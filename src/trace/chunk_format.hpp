// v2/v3 chunked record container: framing constants, header codec,
// validation.
//
// A v2 stream is a 4-byte stream magic followed by zero or more chunks:
//
//   stream  := magic chunk*
//   magic   := F7 'R' 'C' '2'
//   chunk   := header payload
//   header  := marker:u32 payload_len:u32 entry_count:u32
//              first_seq:u64 last_seq:u64 crc32:u32          (32 bytes, LE)
//   payload := entry_count varint-delta entries (same per-entry encoding as
//              v1, but the delta chain RESETS to 0 at each chunk start so
//              every chunk decodes on its own)
//
// v3 keeps the v2 framing byte-for-byte and appends a per-chunk block
// codec (magic F7 'R' 'C' '3'; selected by REOMP_TRACE_COMPRESS):
//
//   chunk   := header codec:u8 [raw_len:u32] payload
//   codec   := 0 stored | 1 lz | 2 delta+lz      (raw_len present iff ≠ 0)
//   payload := codec-encoded chunk body; payload_len and crc32 describe
//              the bytes ON THE WIRE, raw_len the inflated body
//
// CRC over the *compressed* payload means verify and salvage never
// inflate: integrity and tear classification stay codec-blind. A stored
// v3 chunk costs exactly one byte over its v2 twin, which is the
// incompressible-data ceiling (the writer falls back to stored whenever
// the codec fails to strictly shrink a payload).
//
// The magic is written eagerly at writer construction, so even a recorder
// killed before its first chunk leaves a self-identifying (empty but valid)
// stream. first_seq/last_seq are stream-wide entry ordinals; a reader
// can therefore detect dropped/duplicated chunks without decoding payloads,
// and a salvage pass can report exactly how many events a torn tail cost.
//
// This header carries no entry-level code — the per-entry codec lives in
// record_stream.{hpp,cpp}; bulk (DecodedSchedule) and streaming
// (RecordReader) paths share validate_header() and the message builders
// below so both throw byte-identical diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace reomp::trace {

/// On-disk container format for record streams.
enum class ContainerFormat : std::uint8_t {
  kV1 = 1,  // raw varint stream, no framing (legacy; read-only by default)
  kV2 = 2,  // CRC-chunked container (default)
  kV3 = 3,  // v2 framing + per-chunk block codec. NOT selectable via
            // REOMP_TRACE_FORMAT: the writer upgrades a v2 stream to v3
            // exactly when REOMP_TRACE_COMPRESS ≠ off, and readers
            // auto-probe it like v1/v2.
};

constexpr std::string_view to_string(ContainerFormat f) {
  switch (f) {
    case ContainerFormat::kV1: return "v1";
    case ContainerFormat::kV2: return "v2";
    case ContainerFormat::kV3: return "v3";
  }
  return "?";
}

std::optional<ContainerFormat> container_format_from_string(
    std::string_view s);

/// Per-chunk block codec selection (Options::trace_compress, env
/// REOMP_TRACE_COMPRESS). `off` keeps the bit-exact v2 container — the
/// ablation baseline; either compressed mode writes v3 and picks, per
/// chunk, the smaller of the requested codec and stored.
enum class TraceCompress : std::uint8_t {
  kOff = 0,      // plain v2 container, no codec layer
  kLz = 1,       // generic LZ stage only (src/common/lz.hpp)
  kDeltaLz = 2,  // epoch-delta column pre-transform, then LZ
};

constexpr std::string_view to_string(TraceCompress c) {
  switch (c) {
    case TraceCompress::kOff: return "off";
    case TraceCompress::kLz: return "lz";
    case TraceCompress::kDeltaLz: return "delta+lz";
  }
  return "?";
}

std::optional<TraceCompress> trace_compress_from_string(std::string_view s);

namespace v2 {

/// Stream magic. 0xF7 is a varint continuation byte implying a gate id
/// ≥ 15351, which no real v1 stream in this codebase starts with — so
/// probing 4 bytes cannot misclassify legacy traces in practice.
inline constexpr std::uint8_t kStreamMagic[4] = {0xF7, 'R', 'C', '2'};
inline constexpr std::size_t kMagicBytes = 4;

/// v3 stream magic: same family as v2, last byte bumps the revision.
inline constexpr std::uint8_t kStreamMagicV3[4] = {0xF7, 'R', 'C', '3'};

/// Per-chunk marker ("RCHK" LE) — catches writes landing at a wrong offset.
inline constexpr std::uint32_t kChunkMarker = 0x4b484352u;

inline constexpr std::size_t kHeaderBytes = 32;

// v3 grows the header by a codec id byte, plus a 4-byte uncompressed
// length for non-stored chunks only (a stored chunk's raw_len IS its
// payload_len, so incompressible data costs exactly +1 byte over v2).
inline constexpr std::size_t kHeaderBytesV3 = kHeaderBytes + 1;
inline constexpr std::size_t kRawLenBytes = 4;
inline constexpr std::size_t kMaxHeaderBytesV3 = kHeaderBytesV3 + kRawLenBytes;

/// v3 per-chunk codec ids (ChunkHeader::codec). Distinct from
/// TraceCompress: that is the *request*, this is what a chunk actually
/// used — a writer asked for lz/delta+lz still emits kCodecStored for any
/// chunk the codec fails to strictly shrink.
inline constexpr std::uint8_t kCodecStored = 0;
inline constexpr std::uint8_t kCodecLz = 1;
inline constexpr std::uint8_t kCodecDeltaLz = 2;
inline constexpr std::uint8_t kCodecMax = kCodecDeltaLz;

/// Upper bound on a chunk payload a reader will accept (64 MiB). Writers
/// emit far smaller chunks (REOMP_TRACE_CHUNK_BYTES, default 64 KiB); the
/// cap stops a corrupt length field from driving a giant allocation. v3
/// applies it to raw_len too, bounding the inflate scratch identically.
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 26;

struct ChunkHeader {
  std::uint32_t payload_len = 0;  // bytes on the wire (post-codec)
  std::uint32_t entry_count = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  std::uint32_t crc = 0;  // CRC32 of the ON-WIRE payload (post-codec)
  // v3 only; a v2 unpack yields the stored-codec identity (raw_len =
  // payload_len) so validation and entry decode stay format-blind.
  std::uint8_t codec = kCodecStored;
  std::uint32_t raw_len = 0;  // inflated payload bytes (pre-codec)
};

/// Serialize the v2 prefix of `h` into `out[0..kHeaderBytes)` (marker
/// included; codec/raw_len are not written — v2 chunks have neither).
void pack_header(const ChunkHeader& h, std::uint8_t* out);

/// Serialize a v3 header (v2 prefix + codec byte + raw_len when
/// compressed) into `out[0..kMaxHeaderBytesV3)`. Returns the bytes used.
std::size_t pack_header_v3(const ChunkHeader& h, std::uint8_t* out);

/// Parse `in[0..kHeaderBytes)`. Returns false when the marker is wrong
/// (the caller decides whether that is corruption or a misprobed stream).
/// Sets codec = kCodecStored and raw_len = payload_len; a v3 reader
/// overwrites both from the trailing header bytes.
[[nodiscard]] bool unpack_header(const std::uint8_t* in, ChunkHeader& h);

/// Little-endian u32 at `in` — the v3 raw_len field, read separately
/// because its presence depends on the codec byte before it.
std::uint32_t unpack_u32(const std::uint8_t* in);

/// Consistency checks on a parsed header: payload caps, a known codec id,
/// non-empty chunk, RAW payload large enough for entry_count
/// 2-byte-minimum entries, stored ⇔ raw_len == payload_len (a compressed
/// chunk must be strictly smaller — the writer's stored fallback
/// guarantees it), seq range arithmetic, and continuity with
/// `expect_first_seq` (stream-wide ordinal of the next expected entry).
/// Throws TraceError(kCorrupt) on violation.
void validate_header(const ChunkHeader& h, std::uint64_t expect_first_seq);

// Shared diagnostic messages. Streaming and bulk decoders must throw
// byte-identical strings (replay_equivalence_test compares them across
// paths), so every v2 error message is built here and nowhere else.
inline constexpr const char* kErrTornHeader =
    "record chunk: stream truncated mid-header";
inline constexpr const char* kErrTornPayload =
    "record chunk: stream truncated mid-payload";
inline constexpr const char* kErrBadMarker = "record chunk: bad chunk marker";
inline constexpr const char* kErrPayloadOverrun =
    "record chunk: entry decode overran chunk payload";
inline constexpr const char* kErrPayloadTrailing =
    "record chunk: trailing bytes after final entry in chunk";
// Window-segment boundaries (windowed flight-recorder layout): a sealed
// segment always starts with the stream magic, so a short or wrong magic
// in a FOLLOW-ON segment is classified like a chunk-level failure.
inline constexpr const char* kErrTornSegmentMagic =
    "record segment: truncated mid-magic";
inline constexpr const char* kErrBadSegmentMagic =
    "record segment: bad stream magic";

std::string crc_mismatch_message(const ChunkHeader& h);
std::string bad_fields_message(const ChunkHeader& h,
                               std::uint64_t expect_first_seq);
/// A CRC-valid compressed payload that fails to inflate back to exactly
/// raw_len bytes (kCorrupt — the chunk is intact but untrustworthy).
std::string inflate_mismatch_message(const ChunkHeader& h);

}  // namespace v2

}  // namespace reomp::trace
