// Record-directory layout and path helpers.
//
//   <dir>/manifest.txt   manifest (strategy, thread count, metadata)
//   <dir>/t<k>.rec       per-thread stream, DC/DE (paper Fig. 3-(b))
//   <dir>/shared.rec     single shared stream, ST (paper Fig. 3-(a))
//
// Windowed (flight-recorder) recordings segment every stream per window
// and snapshot the replayable engine state at each window boundary:
//
//   <dir>/t<k>.w<w>.rec      per-thread segment of window w (DC/DE)
//   <dir>/shared.w<w>.rec    shared segment of window w (ST)
//   <dir>/snap.w<w>.txt      CRC-checked snapshot of the state at the
//                            START of window w (w >= 1; window 0 starts
//                            from the zero state and has no file)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace reomp::trace {

/// Create `dir` (and parents) if missing. Throws on failure.
void ensure_dir(const std::string& dir);

/// Remove every regular file directly inside `dir` (used when re-recording
/// into an existing directory). Missing dir is not an error.
void clear_dir(const std::string& dir);

std::string manifest_path(const std::string& dir);
std::string thread_file_path(const std::string& dir, std::uint32_t tid);
std::string shared_file_path(const std::string& dir);

/// Machine-readable stall report written by the replay stall supervisor
/// when a replay against this directory was poisoned (stall_supervisor.hpp).
/// `reomp_records verify`/`windows` surface it with a distinct exit code.
std::string stall_path(const std::string& dir);

// Windowed layout (bounded-retention flight recorder).
std::string thread_window_file_path(const std::string& dir, std::uint32_t tid,
                                    std::uint64_t window);
std::string shared_window_file_path(const std::string& dir,
                                    std::uint64_t window);
std::string snapshot_path(const std::string& dir, std::uint64_t window);

/// Window index of a windowed-layout file name ("t3.w7.rec",
/// "shared.w12.rec", "snap.w4.txt"); nullopt for every other name
/// (manifest, flat streams, foreign files). Accepts a bare file name, not
/// a path.
std::optional<std::uint64_t> parse_window_index(const std::string& filename);

/// Remove leftover "*.tmp" debris directly inside `dir` — the residue of a
/// crash between atomic_write_file's temp write and its rename. Run when a
/// new recording opens the dir, so stale temps cannot shadow live files or
/// confuse `reomp_records verify`. Missing dir is not an error.
void remove_stale_tmp(const std::string& dir);

bool file_exists(const std::string& path);

/// Durably replace `path` with `contents`: write + fsync a temp file in
/// the same directory, rename(2) it over `path`, then fsync the directory.
/// A crash at any point leaves either the old complete file or the new
/// complete file — never a torn one. Throws TraceError(kIo) on failure
/// (best-effort temp cleanup). Goes through the write fault injector.
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace reomp::trace
