// Record-directory layout and path helpers.
//
//   <dir>/manifest.txt   manifest (strategy, thread count, metadata)
//   <dir>/t<k>.rec       per-thread stream, DC/DE (paper Fig. 3-(b))
//   <dir>/shared.rec     single shared stream, ST (paper Fig. 3-(a))
#pragma once

#include <cstdint>
#include <string>

namespace reomp::trace {

/// Create `dir` (and parents) if missing. Throws on failure.
void ensure_dir(const std::string& dir);

/// Remove every regular file directly inside `dir` (used when re-recording
/// into an existing directory). Missing dir is not an error.
void clear_dir(const std::string& dir);

std::string manifest_path(const std::string& dir);
std::string thread_file_path(const std::string& dir, std::uint32_t tid);
std::string shared_file_path(const std::string& dir);

bool file_exists(const std::string& path);

/// Durably replace `path` with `contents`: write + fsync a temp file in
/// the same directory, rename(2) it over `path`, then fsync the directory.
/// A crash at any point leaves either the old complete file or the new
/// complete file — never a torn one. Throws TraceError(kIo) on failure
/// (best-effort temp cleanup). Goes through the write fault injector.
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace reomp::trace
