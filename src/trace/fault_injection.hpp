// Write-path fault injection for durability tests.
//
// A process-global injector sits between the trace layer's buffered sinks
// and the write(2) syscall (FileSink flushes, atomic manifest commits).
// Disarmed — the default — it is a relaxed atomic load and a tail call to
// ::write. Armed, it counts cumulative bytes offered for writing and fires
// one failure mode when the count crosses a threshold:
//
//   REOMP_FI_WRITE=kill@N     write the prefix up to cumulative byte N,
//                             then _exit(kKillExitCode) — a byte-precise
//                             torn-file crash (no flush, no atexit)
//   REOMP_FI_WRITE=enospc@N   write up to byte N, then fail every further
//                             write with ENOSPC (disk-full latch)
//   REOMP_FI_WRITE=short@N    one short write at the crossing, then behave
//                             normally (retry-loop coverage)
//   REOMP_FI_WRITE=eintr@N    16 consecutive EINTR failures at the
//                             crossing, then disarm (signal-storm coverage)
//
// arm_from_env() re-arms only when the env string CHANGES from what it last
// saw, so a fork child armed programmatically via arm() keeps its spec even
// though every FileSink constructor calls arm_from_env(). Test-only code:
// armed-path cost is irrelevant, disarmed-path cost is one atomic load.
// A second, replay-side injector mutates decoded SCHEDULES instead of
// written bytes (REOMP_FI_SCHEDULE): applied at decode time, post-CRC, it
// models corrupt-but-CRC-valid schedules and genuine nondeterminism — the
// inputs the replay stall supervisor must convert into bounded verdicts:
//
//   REOMP_FI_SCHEDULE=drop@N   remove the entry at stream-wide ordinal N
//   REOMP_FI_SCHEDULE=dup@N    duplicate the entry at ordinal N
//   REOMP_FI_SCHEDULE=swap@N   swap the entries at ordinals N and N+1
//   REOMP_FI_SCHEDULE=gate@N   perturb entry N's gate id by +1
//
// Both replay data paths apply the same mutation at the same ordinal: the
// prefetch decoder through mutate_entries(), the streaming RecordReader
// internally (it captures schedule_fault() at construction).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reomp::trace {
struct RecordEntry;
}  // namespace reomp::trace

namespace reomp::trace::fi {

/// Exit code used by kill@N so a parent can tell an injected crash from a
/// real one.
inline constexpr int kKillExitCode = 42;

/// Arm from a spec string ("kill@1024", ...). Resets the cumulative byte
/// counter. Empty spec disarms. Throws std::runtime_error on a malformed
/// spec (strict, like the REOMP_* measurement knobs).
void arm(const std::string& spec);

/// Disarm and reset counters.
void disarm();

/// Arm from $REOMP_FI_WRITE if the variable's value differs from the last
/// one this function saw (including unset -> set transitions). Called by
/// FileSink construction and atomic_write_file so env-driven injection
/// needs no code changes at call sites.
void arm_from_env();

/// write(2) wrapper with the injector in the path. Returns the syscall
/// result (bytes written, or -1 with errno set).
ssize_t inject_write(int fd, const std::uint8_t* data, std::size_t size);

/// Cumulative bytes offered to inject_write since the last arm/disarm.
std::uint64_t bytes_offered();

// ---- schedule-mutation injection (REOMP_FI_SCHEDULE) ----

enum class ScheduleMutation : std::uint8_t { kNone = 0, kDrop, kDup, kSwap,
                                             kGate };

/// The armed schedule mutation, captured by value at decode/reader-open
/// time so one replay applies one consistent mutation even if the injector
/// is re-armed mid-run.
struct ScheduleFault {
  ScheduleMutation kind = ScheduleMutation::kNone;
  std::uint64_t index = 0;  // stream-wide entry ordinal the mutation targets

  [[nodiscard]] bool armed() const { return kind != ScheduleMutation::kNone; }
};

/// Arm from a spec string ("drop@3", ...). Empty spec disarms. Throws
/// std::runtime_error on a malformed spec (strict, like REOMP_FI_WRITE).
void schedule_arm(const std::string& spec);

/// Disarm the schedule injector.
void schedule_disarm();

/// Arm from $REOMP_FI_SCHEDULE when its value differs from the last one
/// seen (same change-detection contract as arm_from_env). Called by
/// Engine::open_replay_streams so env-driven fuzzing needs no code hooks.
void schedule_arm_from_env();

/// The currently armed schedule mutation ({} when disarmed).
[[nodiscard]] ScheduleFault schedule_fault();

/// Apply `fault` to a decoded entry vector whose first element has
/// stream-wide ordinal `base` (0 for whole streams, the snapshot base for
/// windowed segments). Out-of-range ordinals are a no-op — the mutation
/// may target a window that was reaped, exactly like real damage would.
/// Streaming readers reproduce these exact semantics entry-by-entry.
void mutate_entries(std::vector<RecordEntry>& entries, std::uint64_t base,
                    const ScheduleFault& fault);

}  // namespace reomp::trace::fi
