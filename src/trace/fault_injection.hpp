// Write-path fault injection for durability tests.
//
// A process-global injector sits between the trace layer's buffered sinks
// and the write(2) syscall (FileSink flushes, atomic manifest commits).
// Disarmed — the default — it is a relaxed atomic load and a tail call to
// ::write. Armed, it counts cumulative bytes offered for writing and fires
// one failure mode when the count crosses a threshold:
//
//   REOMP_FI_WRITE=kill@N     write the prefix up to cumulative byte N,
//                             then _exit(kKillExitCode) — a byte-precise
//                             torn-file crash (no flush, no atexit)
//   REOMP_FI_WRITE=enospc@N   write up to byte N, then fail every further
//                             write with ENOSPC (disk-full latch)
//   REOMP_FI_WRITE=short@N    one short write at the crossing, then behave
//                             normally (retry-loop coverage)
//   REOMP_FI_WRITE=eintr@N    16 consecutive EINTR failures at the
//                             crossing, then disarm (signal-storm coverage)
//
// arm_from_env() re-arms only when the env string CHANGES from what it last
// saw, so a fork child armed programmatically via arm() keeps its spec even
// though every FileSink constructor calls arm_from_env(). Test-only code:
// armed-path cost is irrelevant, disarmed-path cost is one atomic load.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace reomp::trace::fi {

/// Exit code used by kill@N so a parent can tell an injected crash from a
/// real one.
inline constexpr int kKillExitCode = 42;

/// Arm from a spec string ("kill@1024", ...). Resets the cumulative byte
/// counter. Empty spec disarms. Throws std::runtime_error on a malformed
/// spec (strict, like the REOMP_* measurement knobs).
void arm(const std::string& spec);

/// Disarm and reset counters.
void disarm();

/// Arm from $REOMP_FI_WRITE if the variable's value differs from the last
/// one this function saw (including unset -> set transitions). Called by
/// FileSink construction and atomic_write_file so env-driven injection
/// needs no code changes at call sites.
void arm_from_env();

/// write(2) wrapper with the injector in the path. Returns the syscall
/// result (bytes written, or -1 with errno set).
ssize_t inject_write(int fd, const std::uint8_t* data, std::size_t size);

/// Cumulative bytes offered to inject_write since the last arm/disarm.
std::uint64_t bytes_offered();

}  // namespace reomp::trace::fi
