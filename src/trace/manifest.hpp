// Record-directory manifest.
//
// The manifest pins everything a replay run must agree on with the record
// run: the recording strategy, the thread count, and arbitrary tool
// metadata. A replay against a manifest recorded with a different strategy
// or thread count is rejected up front rather than deadlocking mid-run.
//
// Since format version 2 the manifest is also the durability commit
// record: Engine::finalize is the ONLY writer of `complete=1`, and every
// manifest write is atomic (temp + fsync + rename, trace_dir.hpp), so a
// crashed or I/O-degraded recorder is detectable (`complete=0`, or a
// missing manifest) rather than silently half-readable. Per-stream
// chunk/byte/entry accounting lets the verify tool cross-check stream
// files against what the recorder believed it wrote.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace reomp::trace {

struct Manifest {
  static constexpr std::uint32_t kFormatVersion = 2;

  /// Recorder-side accounting for one stream file, written at finalize.
  /// Serialized "chunks:bytes:entries[:raw_bytes]" — the 4th field arrived
  /// with the v3 compressed container (same manifest format version; a
  /// 3-field stat from an older manifest loads with raw_bytes = bytes,
  /// i.e. ratio 1, which is exact for the uncompressed containers).
  struct StreamStat {
    std::uint64_t chunks = 0;   // v2/v3 chunks (0 for a v1 stream)
    std::uint64_t bytes = 0;    // final wire size of the stream file
    std::uint64_t entries = 0;  // logical record entries
    /// Bytes the bit-exact v2 anchor encoding would occupy; equals `bytes`
    /// for v1/v2 streams, and raw_bytes / bytes is the stream's
    /// compression ratio for v3. 0 only in hand-built aggregate-init test
    /// fixtures (treated as "unknown" by the verify tool).
    std::uint64_t raw_bytes = 0;

    friend bool operator==(const StreamStat&, const StreamStat&) = default;
  };

  std::uint32_t version = kFormatVersion;
  std::string strategy;        // "st" | "dc" | "de"
  std::uint32_t num_threads = 0;
  /// True only when finalize ran to completion with no I/O errors.
  /// Version-1 manifests predate the marker and load as complete (they
  /// could only ever be observed after a successful finalize).
  bool complete = false;
  /// Keyed "shared" (ST) or "t<k>" (DC/DE). Empty until finalize.
  /// Windowed recordings account per window instead (below) and leave
  /// this empty.
  std::map<std::string, StreamStat> streams;
  std::map<std::string, std::string> extra;  // tool metadata (free-form)

  // ---- windowed (flight-recorder) layout ----
  // A windowed recording segments every stream per window
  // (t<k>.w<w>.rec / shared.w<w>.rec) and keeps a bounded ring of
  // windows on disk. The manifest commit is what makes a cut (and the
  // retention drop that rides along) authoritative: the reaper deletes a
  // window's segments only AFTER the manifest that no longer lists it has
  // been atomically committed, so a crash at any byte leaves a manifest
  // whose live set [window_first, window_open] is fully decodable.
  bool windowed = false;
  std::uint64_t window_first = 0;  // oldest retained window
  std::uint64_t window_open = 0;   // the in-flight window (sealed only at
                                   // finalize, when `complete` flips)
  /// Per-window per-stream accounting for every SEALED live window
  /// (window_open included once finalize seals it). StreamStat::entries
  /// counts the segment's own entries; chunk seq ordinals are cumulative.
  std::map<std::uint64_t, std::map<std::string, StreamStat>> windows;

  /// Serialize to the `key=value` text format.
  [[nodiscard]] std::string to_text() const;

  /// Parse; returns nullopt on syntax errors or unsupported version
  /// (versions 1 and 2 are accepted).
  static std::optional<Manifest> from_text(const std::string& text);

  /// Atomic durable write (temp + fsync + rename + dir fsync).
  /// Throws TraceError(kIo) on failure.
  void save(const std::string& path) const;
  static std::optional<Manifest> load(const std::string& path);
};

}  // namespace reomp::trace
