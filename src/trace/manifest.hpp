// Record-directory manifest.
//
// The manifest pins everything a replay run must agree on with the record
// run: the recording strategy, the thread count, and arbitrary tool
// metadata. A replay against a manifest recorded with a different strategy
// or thread count is rejected up front rather than deadlocking mid-run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace reomp::trace {

struct Manifest {
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t version = kFormatVersion;
  std::string strategy;        // "st" | "dc" | "de"
  std::uint32_t num_threads = 0;
  std::map<std::string, std::string> extra;  // tool metadata (free-form)

  /// Serialize to the `key=value` text format.
  [[nodiscard]] std::string to_text() const;

  /// Parse; returns nullopt on syntax errors or unsupported version.
  static std::optional<Manifest> from_text(const std::string& text);

  void save(const std::string& path) const;   // throws on I/O failure
  static std::optional<Manifest> load(const std::string& path);
};

}  // namespace reomp::trace
