#include "src/trace/manifest.hpp"

#include <fstream>
#include <sstream>

#include "src/trace/trace_dir.hpp"

namespace reomp::trace {

namespace {

// Parse "<chunks>:<bytes>:<entries>[:<raw_bytes>]"; false on any syntax
// violation. The 3-field form predates the v3 compressed container, where
// raw == wire — load it as raw_bytes = bytes.
bool parse_stream_stat(const std::string& value, Manifest::StreamStat& out) {
  std::uint64_t fields[4] = {0, 0, 0, 0};
  std::size_t field = 0;
  bool any_digit = false;
  for (const char c : value) {
    if (c == ':') {
      if (!any_digit || field >= 3) return false;
      ++field;
      any_digit = false;
      continue;
    }
    if (c < '0' || c > '9') return false;
    fields[field] = fields[field] * 10 + static_cast<std::uint64_t>(c - '0');
    any_digit = true;
  }
  if (field < 2 || !any_digit) return false;
  out.chunks = fields[0];
  out.bytes = fields[1];
  out.entries = fields[2];
  out.raw_bytes = field == 3 ? fields[3] : fields[1];
  return true;
}

}  // namespace

std::string Manifest::to_text() const {
  std::ostringstream os;
  os << "version=" << version << "\n";
  os << "strategy=" << strategy << "\n";
  os << "num_threads=" << num_threads << "\n";
  os << "complete=" << (complete ? 1 : 0) << "\n";
  for (const auto& [name, s] : streams) {
    os << "stream." << name << "=" << s.chunks << ":" << s.bytes << ":"
       << s.entries << ":" << s.raw_bytes << "\n";
  }
  if (windowed) {
    os << "windowed=1\n";
    os << "window_first=" << window_first << "\n";
    os << "window_open=" << window_open << "\n";
    for (const auto& [w, streams_of_w] : windows) {
      for (const auto& [name, s] : streams_of_w) {
        os << "window." << w << "." << name << "=" << s.chunks << ":"
           << s.bytes << ":" << s.entries << ":" << s.raw_bytes << "\n";
      }
    }
  }
  for (const auto& [k, v] : extra) os << "x." << k << "=" << v << "\n";
  return os.str();
}

namespace {

// Parse a decimal uint64 with no sign/whitespace/trailing junk.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

std::optional<Manifest> Manifest::from_text(const std::string& text) {
  Manifest m;
  bool saw_version = false;
  bool saw_complete = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "version") {
      m.version = static_cast<std::uint32_t>(std::stoul(value));
      saw_version = true;
    } else if (key == "strategy") {
      m.strategy = value;
    } else if (key == "num_threads") {
      m.num_threads = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "complete") {
      if (value != "0" && value != "1") return std::nullopt;
      m.complete = value == "1";
      saw_complete = true;
    } else if (key.rfind("stream.", 0) == 0) {
      StreamStat s;
      if (!parse_stream_stat(value, s)) return std::nullopt;
      m.streams[key.substr(7)] = s;
    } else if (key == "windowed") {
      if (value != "0" && value != "1") return std::nullopt;
      m.windowed = value == "1";
    } else if (key == "window_first") {
      if (!parse_u64(value, m.window_first)) return std::nullopt;
    } else if (key == "window_open") {
      if (!parse_u64(value, m.window_open)) return std::nullopt;
    } else if (key.rfind("window.", 0) == 0) {
      // window.<w>.<stream>=chunks:bytes:entries
      const std::string rest = key.substr(7);
      const auto dot = rest.find('.');
      if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
        return std::nullopt;
      }
      std::uint64_t w = 0;
      if (!parse_u64(rest.substr(0, dot), w)) return std::nullopt;
      StreamStat s;
      if (!parse_stream_stat(value, s)) return std::nullopt;
      m.windows[w][rest.substr(dot + 1)] = s;
    } else if (key.rfind("x.", 0) == 0) {
      m.extra[key.substr(2)] = value;
    } else {
      return std::nullopt;  // unknown top-level key: likely wrong file
    }
  }
  if (!saw_version || (m.version != 1 && m.version != 2)) {
    return std::nullopt;
  }
  if (m.version == 1) {
    // v1 manifests were written once, after a successful finalize — the
    // completeness marker did not exist because incompleteness could not
    // be represented. Treat them as complete.
    m.complete = true;
  } else if (!saw_complete) {
    m.complete = false;  // conservative: no marker means not sealed
  }
  if (m.windowed && m.window_first > m.window_open) return std::nullopt;
  if (!m.windowed &&
      (m.window_first != 0 || m.window_open != 0 || !m.windows.empty())) {
    return std::nullopt;  // window keys without the windowed marker
  }
  return m;
}

void Manifest::save(const std::string& path) const {
  atomic_write_file(path, to_text());
}

std::optional<Manifest> Manifest::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream os;
  os << f.rdbuf();
  return from_text(os.str());
}

}  // namespace reomp::trace
