#include "src/trace/manifest.hpp"

#include <fstream>
#include <sstream>

namespace reomp::trace {

std::string Manifest::to_text() const {
  std::ostringstream os;
  os << "version=" << version << "\n";
  os << "strategy=" << strategy << "\n";
  os << "num_threads=" << num_threads << "\n";
  for (const auto& [k, v] : extra) os << "x." << k << "=" << v << "\n";
  return os.str();
}

std::optional<Manifest> Manifest::from_text(const std::string& text) {
  Manifest m;
  bool saw_version = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "version") {
      m.version = static_cast<std::uint32_t>(std::stoul(value));
      saw_version = true;
    } else if (key == "strategy") {
      m.strategy = value;
    } else if (key == "num_threads") {
      m.num_threads = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key.rfind("x.", 0) == 0) {
      m.extra[key.substr(2)] = value;
    } else {
      return std::nullopt;  // unknown top-level key: likely wrong file
    }
  }
  if (!saw_version || m.version != kFormatVersion) return std::nullopt;
  return m;
}

void Manifest::save(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot write manifest: " + path);
  f << to_text();
}

std::optional<Manifest> Manifest::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream os;
  os << f.rdbuf();
  return from_text(os.str());
}

}  // namespace reomp::trace
