#include "src/trace/fault_injection.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/common/env.hpp"
#include "src/trace/record_stream.hpp"

namespace reomp::trace::fi {

namespace {

enum class Mode : std::uint8_t { kOff, kKill, kEnospc, kShort, kEintr };

// Armed-state fast gate: checked with a relaxed load before taking the
// mutex, so the disarmed production path costs one atomic load.
std::atomic<bool> g_armed{false};

std::mutex g_mu;
Mode g_mode = Mode::kOff;            // guarded by g_mu
std::uint64_t g_threshold = 0;       // byte at which the fault fires
std::uint64_t g_offered = 0;         // cumulative bytes seen
int g_eintr_left = 0;                // remaining EINTR returns
bool g_short_done = false;           // short@N fires once
std::string g_last_env_spec;         // last $REOMP_FI_WRITE value seen
bool g_env_seen = false;

void arm_locked(const std::string& spec) {
  g_mode = Mode::kOff;
  g_threshold = 0;
  g_offered = 0;
  g_eintr_left = 0;
  g_short_done = false;
  if (spec.empty()) {
    g_armed.store(false, std::memory_order_relaxed);
    return;
  }
  const auto at = spec.find('@');
  const std::string kind = spec.substr(0, at == std::string::npos
                                              ? spec.size()
                                              : at);
  Mode mode = Mode::kOff;
  if (kind == "kill") mode = Mode::kKill;
  else if (kind == "enospc") mode = Mode::kEnospc;
  else if (kind == "short") mode = Mode::kShort;
  else if (kind == "eintr") mode = Mode::kEintr;
  std::uint64_t n = 0;
  bool n_ok = false;
  if (at != std::string::npos && at + 1 < spec.size()) {
    n_ok = true;
    for (std::size_t i = at + 1; i < spec.size(); ++i) {
      const char c = spec[i];
      if (c < '0' || c > '9') {
        n_ok = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  if (mode == Mode::kOff || !n_ok) {
    throw std::runtime_error(
        "REOMP_FI_WRITE='" + spec +
        "' is not a valid fault spec (expected kill@N|enospc@N|short@N|"
        "eintr@N)");
  }
  g_mode = mode;
  g_threshold = n;
  g_eintr_left = mode == Mode::kEintr ? 16 : 0;
  g_armed.store(true, std::memory_order_relaxed);
}

}  // namespace

void arm(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  arm_locked(spec);
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  arm_locked("");
}

void arm_from_env() {
  const std::string spec = env_string("REOMP_FI_WRITE").value_or("");
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_env_seen && spec == g_last_env_spec) return;
  g_env_seen = true;
  g_last_env_spec = spec;
  arm_locked(spec);
}

ssize_t inject_write(int fd, const std::uint8_t* data, std::size_t size) {
  if (!g_armed.load(std::memory_order_relaxed)) {
    return ::write(fd, data, size);
  }
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_mode == Mode::kOff) return ::write(fd, data, size);

  const std::uint64_t before = g_offered;
  const bool crossing = before + size > g_threshold;
  switch (g_mode) {
    case Mode::kKill: {
      if (!crossing) break;
      // Write the exact byte prefix up to the threshold, then die the way
      // a SIGKILLed process would: no flush, no atexit, no unwinding.
      const std::size_t keep =
          static_cast<std::size_t>(g_threshold - before);
      std::size_t done = 0;
      while (done < keep) {
        const ssize_t n = ::write(fd, data + done, keep - done);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        done += static_cast<std::size_t>(n);
      }
      ::_exit(kKillExitCode);
    }
    case Mode::kEnospc: {
      if (before >= g_threshold) {
        errno = ENOSPC;
        return -1;
      }
      if (crossing) {
        const std::size_t keep =
            static_cast<std::size_t>(g_threshold - before);
        const ssize_t n = ::write(fd, data, keep);
        if (n > 0) g_offered += static_cast<std::uint64_t>(n);
        return n;  // short write; the caller's loop re-enters and latches
      }
      break;
    }
    case Mode::kShort: {
      if (crossing && !g_short_done && size > 1) {
        g_short_done = true;
        const ssize_t n = ::write(fd, data, size / 2);
        if (n > 0) g_offered += static_cast<std::uint64_t>(n);
        return n;
      }
      break;
    }
    case Mode::kEintr: {
      if (crossing && g_eintr_left > 0) {
        --g_eintr_left;
        errno = EINTR;
        return -1;
      }
      break;
    }
    case Mode::kOff:
      break;
  }
  const ssize_t n = ::write(fd, data, size);
  if (n > 0) g_offered += static_cast<std::uint64_t>(n);
  return n;
}

std::uint64_t bytes_offered() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_offered;
}

// ---- schedule-mutation injection ----

namespace {

// Same fast-gate + mutex discipline as the write injector, with its own
// state so the two can be armed independently.
std::atomic<bool> g_sched_armed{false};

std::mutex g_sched_mu;
ScheduleFault g_sched_fault;          // guarded by g_sched_mu
std::string g_sched_last_env_spec;    // last $REOMP_FI_SCHEDULE value seen
bool g_sched_env_seen = false;

void schedule_arm_locked(const std::string& spec) {
  g_sched_fault = {};
  if (spec.empty()) {
    g_sched_armed.store(false, std::memory_order_relaxed);
    return;
  }
  const auto at = spec.find('@');
  const std::string kind =
      spec.substr(0, at == std::string::npos ? spec.size() : at);
  ScheduleMutation mut = ScheduleMutation::kNone;
  if (kind == "drop") mut = ScheduleMutation::kDrop;
  else if (kind == "dup") mut = ScheduleMutation::kDup;
  else if (kind == "swap") mut = ScheduleMutation::kSwap;
  else if (kind == "gate") mut = ScheduleMutation::kGate;
  std::uint64_t n = 0;
  bool n_ok = false;
  if (at != std::string::npos && at + 1 < spec.size()) {
    n_ok = true;
    for (std::size_t i = at + 1; i < spec.size(); ++i) {
      const char c = spec[i];
      if (c < '0' || c > '9') {
        n_ok = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  if (mut == ScheduleMutation::kNone || !n_ok) {
    throw std::runtime_error(
        "REOMP_FI_SCHEDULE='" + spec +
        "' is not a valid fault spec (expected drop@N|dup@N|swap@N|gate@N)");
  }
  g_sched_fault = {mut, n};
  g_sched_armed.store(true, std::memory_order_relaxed);
}

}  // namespace

void schedule_arm(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_sched_mu);
  schedule_arm_locked(spec);
}

void schedule_disarm() {
  std::lock_guard<std::mutex> lock(g_sched_mu);
  schedule_arm_locked("");
}

void schedule_arm_from_env() {
  const std::string spec = env_string("REOMP_FI_SCHEDULE").value_or("");
  std::lock_guard<std::mutex> lock(g_sched_mu);
  if (g_sched_env_seen && spec == g_sched_last_env_spec) return;
  g_sched_env_seen = true;
  g_sched_last_env_spec = spec;
  schedule_arm_locked(spec);
}

ScheduleFault schedule_fault() {
  if (!g_sched_armed.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(g_sched_mu);
  return g_sched_fault;
}

void mutate_entries(std::vector<RecordEntry>& entries, std::uint64_t base,
                    const ScheduleFault& fault) {
  if (!fault.armed() || fault.index < base) return;
  const std::uint64_t rel = fault.index - base;
  if (rel >= entries.size()) return;
  const auto it = entries.begin() + static_cast<std::ptrdiff_t>(rel);
  switch (fault.kind) {
    case ScheduleMutation::kDrop:
      entries.erase(it);
      break;
    case ScheduleMutation::kDup:
      entries.insert(it, *it);
      break;
    case ScheduleMutation::kSwap:
      // A final-entry swap has no successor: the entry stands, exactly as
      // the streaming reader behaves at end of stream.
      if (rel + 1 < entries.size()) {
        std::swap(entries[rel], entries[rel + 1]);
      }
      break;
    case ScheduleMutation::kGate:
      it->gate += 1;
      break;
    case ScheduleMutation::kNone:
      break;
  }
}

}  // namespace reomp::trace::fi
