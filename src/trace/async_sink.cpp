#include "src/trace/async_sink.hpp"

#include <chrono>
#include <utility>

namespace reomp::trace {

namespace {
// Idle poll interval. Write-behind tolerates latency (nothing reads a
// record stream until the run finalizes), so when a sweep moves nothing
// the writer parks rather than busy-spinning against the record threads —
// on an oversubscribed host every writer spin steals a record-thread
// timeslice.
constexpr auto kIdleWait = std::chrono::microseconds(200);
}  // namespace

AsyncTraceWriter::AsyncTraceWriter(std::vector<DrainFn> streams)
    : streams_(std::move(streams)) {}

AsyncTraceWriter::~AsyncTraceWriter() { stop(); }

void AsyncTraceWriter::start() {
  thread_ = std::thread([this] { run(); });
}

std::size_t AsyncTraceWriter::sweep() {
  // Excluded by pause() holders: a window cutter owns the streams' writers
  // exclusively while it seals and swaps segments.
  std::lock_guard<std::mutex> lock(sweep_mu_);
  std::size_t n = 0;
  for (auto& drain : streams_) {
    // A throwing drain must not kill the writer thread (std::terminate)
    // or wedge stop()'s final drain loop — record what happened and keep
    // sweeping the other streams. The throwing stream's ring stops being
    // drained only for this pass; a latched sink keeps draining normally.
    try {
      n += drain();
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(errors_mu_);
      stream_errors_.emplace_back(e.what());
    }
  }
  if (n > 0) {
    drained_.fetch_add(n, std::memory_order_relaxed);
  } else {
    idle_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }
  return n;
}

void AsyncTraceWriter::run() {
  // The writer competes with the record threads for cores, so it counts
  // toward the census that steers every adaptive wait in the process.
  ThreadCensus::Scope census;
  for (;;) {
    const std::size_t moved = sweep();
    if (stop_word_.load() != 0) return;
    if (moved == 0) {
      // Timed park: the ring producers are lock-free and never notify, so
      // the idle writer must wake on its own schedule to keep the rings
      // bounded; stop()'s publish cuts the nap short. While napping the
      // writer burns no CPU, so it steps out of the runnable census —
      // otherwise an exactly-subscribed record run would be misclassified
      // as oversubscribed for the whole run.
      ThreadCensus::ParkedScope parked;
      stop_word_.wait_for(0, kIdleWait);
    }
  }
}

void AsyncTraceWriter::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  stop_word_.store_and_wake(1);
  if (thread_.joinable()) thread_.join();
  // The writer thread is gone; finish the job single-threaded. Producers
  // must have quiesced by now (Engine::finalize runs after the parallel
  // work), so draining until a clean pass empties every stream.
  while (sweep() > 0) {
  }
}

}  // namespace reomp::trace
