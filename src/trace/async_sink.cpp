#include "src/trace/async_sink.hpp"

#include <chrono>
#include <utility>

namespace reomp::trace {

namespace {
// Idle poll interval. Write-behind tolerates latency (nothing reads a
// record stream until the run finalizes), so when a sweep moves nothing
// the writer parks rather than busy-spinning against the record threads —
// on an oversubscribed host every writer spin steals a record-thread
// timeslice.
constexpr auto kIdleWait = std::chrono::microseconds(200);
}  // namespace

AsyncTraceWriter::AsyncTraceWriter(std::vector<DrainFn> streams)
    : streams_(std::move(streams)) {}

AsyncTraceWriter::~AsyncTraceWriter() { stop(); }

void AsyncTraceWriter::start() {
  thread_ = std::thread([this] { run(); });
}

std::size_t AsyncTraceWriter::sweep() {
  std::size_t n = 0;
  for (auto& drain : streams_) n += drain();
  if (n > 0) {
    drained_.fetch_add(n, std::memory_order_relaxed);
  } else {
    idle_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }
  return n;
}

void AsyncTraceWriter::run() {
  for (;;) {
    const std::size_t moved = sweep();
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_requested_) return;
    if (moved == 0) {
      cv_.wait_for(lk, kIdleWait, [this] { return stop_requested_; });
    }
  }
}

void AsyncTraceWriter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The writer thread is gone; finish the job single-threaded. Producers
  // must have quiesced by now (Engine::finalize runs after the parallel
  // work), so draining until a clean pass empties every stream.
  while (sweep() > 0) {
  }
}

}  // namespace reomp::trace
