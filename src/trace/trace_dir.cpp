#include "src/trace/trace_dir.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/trace/byte_io.hpp"
#include "src/trace/fault_injection.hpp"
#include "src/trace/trace_error.hpp"

namespace reomp::trace {

namespace fs = std::filesystem;

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) {
    throw std::runtime_error("cannot create record dir '" + dir +
                             "': " + ec.message());
  }
}

void clear_dir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) fs::remove(entry.path(), ec);
  }
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

std::string thread_file_path(const std::string& dir, std::uint32_t tid) {
  return dir + "/t" + std::to_string(tid) + ".rec";
}

std::string shared_file_path(const std::string& dir) {
  return dir + "/shared.rec";
}

std::string stall_path(const std::string& dir) { return dir + "/stall.txt"; }

std::string thread_window_file_path(const std::string& dir, std::uint32_t tid,
                                    std::uint64_t window) {
  return dir + "/t" + std::to_string(tid) + ".w" + std::to_string(window) +
         ".rec";
}

std::string shared_window_file_path(const std::string& dir,
                                    std::uint64_t window) {
  return dir + "/shared.w" + std::to_string(window) + ".rec";
}

std::string snapshot_path(const std::string& dir, std::uint64_t window) {
  return dir + "/snap.w" + std::to_string(window) + ".txt";
}

std::optional<std::uint64_t> parse_window_index(const std::string& filename) {
  // Shape: <stem>.w<digits>.<ext> where stem/ext are non-empty and the
  // digits carry no sign or leading junk. Parsed from the extension
  // backwards so a stem containing ".w" cannot confuse it.
  const auto ext_dot = filename.find_last_of('.');
  if (ext_dot == std::string::npos || ext_dot == 0) return std::nullopt;
  const std::string ext = filename.substr(ext_dot);
  if (ext != ".rec" && ext != ".txt") return std::nullopt;
  const auto w_dot = filename.find_last_of('.', ext_dot - 1);
  if (w_dot == std::string::npos || w_dot == 0) return std::nullopt;
  if (filename[w_dot + 1] != 'w') return std::nullopt;
  std::uint64_t value = 0;
  bool any_digit = false;
  for (std::size_t i = w_dot + 2; i < ext_dot; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    any_digit = true;
  }
  if (!any_digit) return std::nullopt;
  return value;
}

void remove_stale_tmp(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
    }
  }
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  fi::arm_from_env();
  const std::string tmp = path + ".tmp";
  const auto fail = [&](const std::string& what) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw TraceError(TraceErrorKind::kIo,
                     what + " '" + path + "': " + std::strerror(saved),
                     saved);
  };

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp file for");
  try {
    write_all_fd(fd, reinterpret_cast<const std::uint8_t*>(contents.data()),
                 contents.size(), tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot fsync temp file for");
  }
  if (::close(fd) != 0) fail("cannot close temp file for");
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail("cannot commit");

  // fsync the directory so the rename itself is durable. Failure here is
  // still reported: without it a power loss can undo the commit.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) fail("cannot open directory of");
  const bool synced = ::fsync(dfd) == 0;
  ::close(dfd);
  if (!synced) {
    throw TraceError(TraceErrorKind::kIo,
                     "cannot fsync directory of '" + path +
                         "': " + std::strerror(errno),
                     errno);
  }
}

}  // namespace reomp::trace
