#include "src/trace/trace_dir.hpp"

#include <filesystem>

namespace reomp::trace {

namespace fs = std::filesystem;

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) {
    throw std::runtime_error("cannot create record dir '" + dir +
                             "': " + ec.message());
  }
}

void clear_dir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) fs::remove(entry.path(), ec);
  }
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

std::string thread_file_path(const std::string& dir, std::uint32_t tid) {
  return dir + "/t" + std::to_string(tid) + ".rec";
}

std::string shared_file_path(const std::string& dir) {
  return dir + "/shared.rec";
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

}  // namespace reomp::trace
