#include "src/trace/decoded_schedule.hpp"

#include <cstring>

#include "src/common/crc32.hpp"
#include "src/common/varint.hpp"
#include "src/trace/chunk_format.hpp"
#include "src/trace/trace_error.hpp"

namespace reomp::trace {

namespace {

constexpr std::size_t kChunk = 1 << 16;

// Classification shared with RecordReader::next_v1: a decode failure with
// fewer than kMaxEntryBytes left is a torn tail (the only way an honest
// writer's stream can end mid-entry); with a full window it is an
// overlong varint, i.e. corruption.
DecodedSchedule decode_v1(const std::uint8_t* data, std::size_t size,
                          bool salvage) {
  DecodedSchedule sched;
  // Typical entries are 2-3 bytes on the wire (small gate ids, small clock
  // deltas); /2 over-reserves slightly rather than reallocating mid-decode.
  sched.entries.reserve(size / kMinEntryBytes);
  std::uint64_t prev_value = 0;
  std::size_t pos = 0;
  while (pos < size) {
    const std::size_t entry_start = pos;
    const char* torn_msg = nullptr;
    const auto gate = varint_decode(data, size, pos);
    if (!gate) {
      torn_msg = "record stream: torn gate id";
    } else {
      const auto zz = varint_decode(data, size, pos);
      if (!zz) {
        torn_msg = "record stream: torn value delta";
      } else {
        prev_value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(prev_value) + zigzag_decode(*zz));
        sched.entries.push_back(
            {static_cast<std::uint32_t>(*gate), prev_value});
        continue;
      }
    }
    const std::uint64_t remaining = size - entry_start;
    if (remaining >= kMaxEntryBytes) {
      throw TraceError(TraceErrorKind::kCorrupt, torn_msg);
    }
    if (!salvage) throw TraceError(TraceErrorKind::kTruncated, torn_msg);
    sched.salvaged = true;
    sched.dropped_bytes = remaining;
    break;
  }
  return sched;
}

// Append every chunk after the (already-verified) stream magic onto
// `sched`, validating ordinal continuity from `expect` on. Shared by the
// whole-stream decode (expect = 0) and the windowed per-segment appends
// (expect = snapshot base + entries appended so far). `v3` selects the
// extended header (codec byte, raw length for compressed chunks) and the
// chunk-at-a-time inflate; failure classification stays byte-identical to
// the streaming RecordReader.
void decode_v2_into(DecodedSchedule& sched, const std::uint8_t* data,
                    std::size_t size, std::uint64_t expect, bool salvage,
                    bool v3) {
  sched.entries.reserve(sched.entries.size() + size / kMinEntryBytes);
  const std::size_t base = v3 ? v2::kHeaderBytesV3 : v2::kHeaderBytes;
  // Reused across chunks: the single scratch pair for v3 inflation.
  std::vector<std::uint8_t> inflate;
  std::vector<std::uint8_t> columns;
  std::size_t pos = v2::kMagicBytes;
  while (pos < size) {
    const std::size_t chunk_start = pos;
    const char* torn_msg = nullptr;
    if (size - pos < base) {
      torn_msg = v2::kErrTornHeader;
    } else {
      v2::ChunkHeader h;
      if (!v2::unpack_header(data + pos, h)) {
        throw TraceError(TraceErrorKind::kCorrupt, v2::kErrBadMarker);
      }
      std::size_t hdr_len = base;
      bool torn_raw_len = false;
      if (v3) {
        h.codec = data[pos + v2::kHeaderBytes];
        if (h.codec > v2::kCodecMax) {
          // Unknown codec: do not trust the header shape enough to read a
          // raw length; leave raw_len inconsistent so validate_header
          // throws the same diagnostic as the streaming path.
          h.raw_len = 0;
        } else if (h.codec != v2::kCodecStored) {
          if (size - pos - v2::kHeaderBytesV3 < v2::kRawLenBytes) {
            torn_raw_len = true;
          } else {
            h.raw_len = v2::unpack_u32(data + pos + v2::kHeaderBytesV3);
            hdr_len += v2::kRawLenBytes;
          }
        }
      }
      if (torn_raw_len) {
        torn_msg = v2::kErrTornHeader;
      } else {
        v2::validate_header(h, expect);
        if (size - pos - hdr_len < h.payload_len) {
          torn_msg = v2::kErrTornPayload;
        } else {
          const std::uint8_t* payload = data + pos + hdr_len;
          if (crc32(payload, h.payload_len) != h.crc) {
            throw TraceError(TraceErrorKind::kCorrupt,
                             v2::crc_mismatch_message(h));
          }
          const std::uint8_t* raw =
              inflate_chunk_payload(h, payload, inflate, columns);
          decode_chunk_entries(h, raw, sched.entries);
          pos += hdr_len + h.payload_len;
          expect = h.last_seq + 1;
          ++sched.chunks;
          continue;
        }
      }
    }
    // Torn tail: the same dropped-byte accounting as the streaming reader
    // (partial header bytes, or full header + partial payload).
    if (!salvage) throw TraceError(TraceErrorKind::kTruncated, torn_msg);
    sched.salvaged = true;
    sched.dropped_bytes = size - chunk_start;
    break;
  }
}

DecodedSchedule decode_v2(const std::uint8_t* data, std::size_t size,
                          bool salvage, bool v3) {
  DecodedSchedule sched;
  decode_v2_into(sched, data, size, /*expect=*/0, salvage, v3);
  return sched;
}

}  // namespace

DecodedSchedule DecodedSchedule::decode_all(ByteSource& source,
                                            std::uint64_t size_hint,
                                            bool salvage) {
  // Phase 1: slurp the whole stream into one contiguous buffer. Reserve
  // one chunk past the hint: the EOF-probing read always overshoots the
  // exact stream size, and an exact reservation would force a full-buffer
  // reallocation on the last iteration.
  std::vector<std::uint8_t> bytes;
  if (size_hint > 0) {
    bytes.reserve(static_cast<std::size_t>(size_hint) + kChunk);
  }
  for (;;) {
    const std::size_t old = bytes.size();
    bytes.resize(old + kChunk);
    const std::size_t got = source.read(bytes.data() + old, kChunk);
    bytes.resize(old + got);
    if (got == 0) break;
  }

  return decode_bytes(bytes.data(), bytes.size(), salvage);
}

DecodedSchedule DecodedSchedule::decode_bytes(const std::uint8_t* data,
                                              std::size_t size,
                                              bool salvage) {
  // One tight decode pass. Same wire formats and failure modes as
  // RecordReader::next (the equivalence suite checks the error strings).
  if (size >= v2::kMagicBytes &&
      std::memcmp(data, v2::kStreamMagic, v2::kMagicBytes) == 0) {
    return decode_v2(data, size, salvage, /*v3=*/false);
  }
  if (size >= v2::kMagicBytes &&
      std::memcmp(data, v2::kStreamMagicV3, v2::kMagicBytes) == 0) {
    return decode_v2(data, size, salvage, /*v3=*/true);
  }
  return decode_v1(data, size, salvage);
}

void DecodedSchedule::append_segment(DecodedSchedule& sched,
                                     const std::uint8_t* data,
                                     std::size_t size, std::uint64_t first_seq,
                                     bool salvage, bool final_segment) {
  const bool may_salvage = salvage && final_segment;
  if (size == 0) return;  // open-window sink created but never flushed
  if (size < v2::kMagicBytes) {
    if (may_salvage) {
      sched.salvaged = true;
      sched.dropped_bytes = size;
      return;
    }
    throw TraceError(TraceErrorKind::kTruncated, v2::kErrTornSegmentMagic);
  }
  bool v3 = false;
  if (std::memcmp(data, v2::kStreamMagicV3, v2::kMagicBytes) == 0) {
    v3 = true;
  } else if (std::memcmp(data, v2::kStreamMagic, v2::kMagicBytes) != 0) {
    throw TraceError(TraceErrorKind::kCorrupt, v2::kErrBadSegmentMagic);
  }
  decode_v2_into(sched, data, size, first_seq, may_salvage, v3);
}

void DecodedSchedule::append_segment_source(DecodedSchedule& sched,
                                            ByteSource& source,
                                            std::uint64_t size_hint,
                                            std::uint64_t first_seq,
                                            bool salvage, bool final_segment) {
  std::vector<std::uint8_t> bytes;
  if (size_hint > 0) {
    bytes.reserve(static_cast<std::size_t>(size_hint) + kChunk);
  }
  for (;;) {
    const std::size_t old = bytes.size();
    bytes.resize(old + kChunk);
    const std::size_t got = source.read(bytes.data() + old, kChunk);
    bytes.resize(old + got);
    if (got == 0) break;
  }
  append_segment(sched, bytes.data(), bytes.size(), first_seq, salvage,
                 final_segment);
}

std::uint64_t DecodedSchedule::scan_decoded_bound(
    ByteSource& source, std::uint64_t fallback_encoded_bytes) {
  const std::uint64_t fallback =
      decoded_bytes_upper_bound(fallback_encoded_bytes);
  std::uint8_t hdr[v2::kMaxHeaderBytesV3];
  const std::size_t got = source.read(hdr, v2::kMagicBytes);
  if (got != v2::kMagicBytes ||
      std::memcmp(hdr, v2::kStreamMagicV3, v2::kMagicBytes) != 0) {
    // v1/v2 (or tiny/empty file): keep the historical worst-case bound so
    // existing admission behaviour is untouched.
    return fallback;
  }
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t hgot = source.read(hdr, v2::kHeaderBytesV3);
    if (hgot == 0) return total;  // clean end at a chunk boundary: exact
    if (hgot < v2::kHeaderBytesV3) return fallback;
    v2::ChunkHeader h;
    if (!v2::unpack_header(hdr, h)) return fallback;
    h.codec = hdr[v2::kHeaderBytes];
    if (h.codec > v2::kCodecMax) return fallback;
    if (h.codec != v2::kCodecStored) {
      if (source.read(hdr + v2::kHeaderBytesV3, v2::kRawLenBytes) <
          v2::kRawLenBytes) {
        return fallback;
      }
      h.raw_len = v2::unpack_u32(hdr + v2::kHeaderBytesV3);
    }
    // Light sanity only (the decode proper classifies damage): enough to
    // keep a garbled count from poisoning the sum.
    if (h.entry_count < 1 || h.payload_len > v2::kMaxChunkPayload ||
        h.raw_len > v2::kMaxChunkPayload) {
      return fallback;
    }
    total += static_cast<std::uint64_t>(h.entry_count) * sizeof(RecordEntry);
    if (source.skip(h.payload_len) < h.payload_len) return fallback;
  }
}

}  // namespace reomp::trace
