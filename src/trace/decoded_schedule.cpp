#include "src/trace/decoded_schedule.hpp"

#include <stdexcept>

#include "src/common/varint.hpp"

namespace reomp::trace {

namespace {
constexpr std::size_t kChunk = 1 << 16;
}  // namespace

DecodedSchedule DecodedSchedule::decode_all(ByteSource& source,
                                            std::uint64_t size_hint) {
  // Phase 1: slurp the whole stream into one contiguous buffer. Reserve
  // one chunk past the hint: the EOF-probing read always overshoots the
  // exact stream size, and an exact reservation would force a full-buffer
  // reallocation on the last iteration.
  std::vector<std::uint8_t> bytes;
  if (size_hint > 0) {
    bytes.reserve(static_cast<std::size_t>(size_hint) + kChunk);
  }
  for (;;) {
    const std::size_t old = bytes.size();
    bytes.resize(old + kChunk);
    const std::size_t got = source.read(bytes.data() + old, kChunk);
    bytes.resize(old + got);
    if (got == 0) break;
  }

  return decode_bytes(bytes.data(), bytes.size());
}

DecodedSchedule DecodedSchedule::decode_bytes(const std::uint8_t* data,
                                              std::size_t size) {
  // One tight decode pass. Same wire format and failure modes as
  // RecordReader::next (the equivalence suite checks the error strings).
  DecodedSchedule sched;
  // Typical entries are 2-3 bytes on the wire (small gate ids, small clock
  // deltas); /2 over-reserves slightly rather than reallocating mid-decode.
  sched.entries.reserve(size / kMinEntryBytes);
  std::uint64_t prev_value = 0;
  std::size_t pos = 0;
  while (pos < size) {
    const auto gate = varint_decode(data, size, pos);
    if (!gate) throw std::runtime_error("record stream: torn gate id");
    const auto zz = varint_decode(data, size, pos);
    if (!zz) throw std::runtime_error("record stream: torn value delta");
    prev_value = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prev_value) + zigzag_decode(*zz));
    sched.entries.push_back({static_cast<std::uint32_t>(*gate), prev_value});
  }
  return sched;
}

}  // namespace reomp::trace
