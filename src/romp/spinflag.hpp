// Producer/consumer spin-flag built on racy loads/stores.
//
// The paper motivates Condition 1 with exactly this pattern (§IV-D):
// producers publish values with plain stores while consumers poll with
// plain loads ("busy-waiting or spinning techniques ... scientific
// applications tend to have this type of data races for user-level
// synchronization"). Every access goes through the racy_* hooks so the
// benign race is detected, gated, recorded and replayed.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/common/waiter.hpp"
#include "src/romp/team.hpp"

namespace reomp::romp {

class SpinFlag {
 public:
  SpinFlag(Team& team, Handle h) : team_(team), handle_(h) {}

  /// Producer side: publish `value` (any nonzero token).
  void publish(WorkerCtx& w, std::uint64_t value) {
    team_.racy_store(w, handle_, flag_, value);
  }

  /// Consumer side: one gated poll; returns current value (0 = not yet).
  std::uint64_t poll(WorkerCtx& w) {
    return team_.racy_load(w, handle_, flag_);
  }

  /// Consumer side: poll until the value reaches at least `target`.
  /// `max_polls` bounds the number of *gated* polls so record and replay
  /// perform identical access counts; between gated polls the caller
  /// paces with the adaptive waiter. pause()-only, never a park on
  /// `flag_`: during replay the producer's publishing store is itself
  /// schedule-gated and may be ordered *after* this consumer's next poll,
  /// so a consumer parked on the flag until the producer stores would
  /// deadlock the very schedule it is replaying. Observing a new (still
  /// too small) value is progress and resets the escalation.
  std::uint64_t wait_at_least(WorkerCtx& w, std::uint64_t target,
                              std::uint64_t max_polls = ~std::uint64_t{0}) {
    std::uint64_t v = 0;
    Waiter waiter;
    std::uint64_t last = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i < max_polls; ++i) {
      v = poll(w);
      if (v >= target) break;
      if (v != last) {
        last = v;
        waiter.reset();
      }
      waiter.pause();
    }
    return v;
  }

  void reset() { flag_.store(0, std::memory_order_relaxed); }

 private:
  Team& team_;
  Handle handle_;
  std::atomic<std::uint64_t> flag_{0};
};

}  // namespace reomp::romp
