// OpenMP-style reduction (`reduction(+ : sum)`).
//
// Each worker accumulates into a cache-padded private slot; at the end of
// the loop the partials merge into the shared result in *arrival order*
// under one gate — exactly the paper's omp_reduction behaviour ("every
// thread records and replays shared memory accesses only once at the end
// of the loop", §VI-A1). For floating point the arrival order changes the
// rounding, so the merged result is run-to-run nondeterministic until
// ReOMP replays it.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cacheline.hpp"
#include "src/romp/team.hpp"

namespace reomp::romp {

template <typename T, typename Op>
class Reducer {
 public:
  Reducer(Team& team, Handle h, T identity, Op op)
      : team_(team),
        handle_(h),
        identity_(identity),
        op_(op),
        locals_(team.num_threads()),
        result_(identity) {
    for (auto& slot : locals_) *slot = identity;
  }

  /// Worker-private accumulator (no synchronization, no gating).
  T& local(const WorkerCtx& w) { return *locals_[w.tid]; }

  /// Merge this worker's partial into the shared result. Call exactly once
  /// per worker, after its loop portion. Arrival order is the recorded
  /// nondeterminism.
  void combine(WorkerCtx& w) {
    T& mine = *locals_[w.tid];
    team_.critical(w, handle_, [&] { result_ = op_(result_, mine); });
    mine = identity_;
  }

  /// Final value; call after the parallel region.
  [[nodiscard]] T result() const { return result_; }

  void reset() {
    result_ = identity_;
    for (auto& slot : locals_) *slot = identity_;
  }

 private:
  Team& team_;
  Handle handle_;
  T identity_;
  Op op_;
  std::vector<CachePadded<T>> locals_;
  T result_;
};

template <typename T>
auto make_sum_reducer(Team& team, Handle h) {
  auto plus = [](T a, T b) { return a + b; };
  return Reducer<T, decltype(plus)>(team, h, T{}, plus);
}

}  // namespace reomp::romp
