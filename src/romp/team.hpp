// romp: a miniature OpenMP-style runtime with ReOMP gates built in.
//
// This substrate replaces the paper's Clang/LLVM-pass instrumentation of
// the LLVM OpenMP runtime (§V): where the pass brackets __kmpc_critical /
// atomic instructions / racy accesses with gate_in/gate_out, romp's
// constructs call the engine at exactly the same points. One Team owns a
// persistent worker pool (fork-join like `#pragma omp parallel`), one
// ReOMP engine, and optionally a race detector (the "detect" run of the
// Fig. 2 toolflow).
//
//   romp::Team team({.num_threads = 8, .engine = opts});
//   auto sum_gate = team.register_handle("sum");
//   std::atomic<double> sum{0};
//   team.parallel([&](romp::WorkerCtx& w) {
//     team.atomic_fetch_add(w, sum_gate, sum, 1.0);
//   });
//   team.finalize();
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/cacheline.hpp"
#include "src/core/engine.hpp"
#include "src/race/detector.hpp"
#include "src/race/report.hpp"
#include "src/race/site.hpp"

namespace reomp::romp {

class Team;

/// How this run participates in the toolflow.
enum class RunKind : std::uint8_t {
  kOff,      // plain execution (engine off, no detector)
  kRecord,   // engine records
  kReplay,   // engine replays
  kDetect,   // race detector attached (Fig. 2 step (1))
  kExplore,  // engine imposes + records a generated schedule; the
             // detector may ride along as the exploration oracle
};

/// Instrumentation handle for one shared-memory access site: a gate id for
/// record/replay plus a site id for detection. Obtained from
/// Team::register_handle(name); the name plays the role of the paper's
/// hashed call-stack descriptor.
struct Handle {
  core::GateId gate = core::kInvalidGate;
  race::SiteId site = race::kInvalidSite;
};

/// Per-worker context handed to every parallel body.
struct WorkerCtx {
  std::uint32_t tid = 0;
  Team* team = nullptr;
  core::ThreadCtx* rctx = nullptr;  // engine thread context
  // Detector per-thread clock handle (detect runs only): the access hot
  // path reads its cached epoch directly instead of indexing the
  // detector's thread array per access.
  race::ThreadClock* dclock = nullptr;
};

struct TeamOptions {
  std::uint32_t num_threads = 1;
  core::Options engine;      // engine.num_threads is overwritten
  /// Attach the race detector. Forces the engine off — except with
  /// engine.mode == kExplore, where the detector rides along as the
  /// schedule-exploration oracle (ROADMAP's race hunter).
  bool detect = false;
  bool pin_threads = true;   // worker k -> cpu k (paper's affinity policy)
  /// Wait policy for team barriers and the fork-join. Distinct from the
  /// engine's replay-gate policy knob, but both default to the unified
  /// kAuto escalation: barrier/join waits bracket milliseconds of compute,
  /// so they spin briefly when cores are free and park (join on
  /// `outstanding_`, barrier on `barrier_phase_`) once starved or
  /// oversubscribed.
  WaitPolicy sync_policy = WaitPolicy::kAuto;
};

class Team {
 public:
  explicit Team(TeamOptions opt);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  // ---- setup ----

  Handle register_handle(const std::string& name);

  /// Wire a race-report instrumentation plan: sites named in the plan get
  /// their shared race gate; race-free sites keep kInvalidGate and their
  /// accesses bypass the engine (paper: only racy accesses are gated).
  Handle register_handle_with_plan(const std::string& name,
                                   const race::InstrumentPlan& plan);

  // ---- parallel execution ----

  /// Run `fn(worker)` on all num_threads workers (main thread is tid 0)
  /// and wait for completion. Exceptions from workers are rethrown here
  /// (first one wins), including core::ReplayDivergence.
  void parallel(const std::function<void(WorkerCtx&)>& fn);

  /// Static (block) scheduled loop: `body(w, lo, hi)` over [begin, end).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(WorkerCtx&, std::int64_t,
                                             std::int64_t)>& body);

  /// Dynamically scheduled loop: chunks claimed via a gated fetch-add so
  /// the (nondeterministic) chunk-to-thread assignment records and replays.
  void parallel_for_dynamic(std::int64_t begin, std::int64_t end,
                            std::int64_t chunk, Handle h,
                            const std::function<void(WorkerCtx&, std::int64_t,
                                                     std::int64_t)>& body);

  /// Team barrier, callable from inside parallel(). Informs the detector.
  void barrier(WorkerCtx& w);

  // ---- gated constructs (the __kmpc_* analogues) ----

  /// `#pragma omp critical` body.
  template <typename Fn>
  void critical(WorkerCtx& w, Handle h, Fn&& fn) {
    switch (kind_) {
      case RunKind::kOff: {
        std::lock_guard<std::mutex> lock(crit_mutex(h));
        fn();
        return;
      }
      case RunKind::kDetect: {
        // Per-site mutex stripe, not one global: named criticals only
        // exclude same-named sections (OpenMP semantics), and a global
        // lock here would serialize the whole detect run and mask the
        // detector's striped sync table entirely.
        std::lock_guard<std::mutex> lock(crit_mutex(h));
        detector_->on_acquire(w.tid, h.site);
        fn();
        detector_->on_release(w.tid, h.site);
        return;
      }
      case RunKind::kRecord:
      case RunKind::kReplay:
        // The gate's serialization (record) / order enforcement (replay)
        // provides the mutual exclusion (paper §V: gate_in before
        // __kmpc_critical, gate_out after __kmpc_end_critical).
        engine_->gate_in(*w.rctx, h.gate, core::AccessKind::kOther);
        fn();
        engine_->gate_out(*w.rctx, h.gate, core::AccessKind::kOther);
        return;
      case RunKind::kExplore:
        // Gate as a record run (the explore scheduler serializes at
        // gate_in) and feed the oracle detector when attached.
        engine_->gate_in(*w.rctx, h.gate, core::AccessKind::kOther);
        if (detector_) detector_->on_acquire(w.tid, h.site);
        fn();
        if (detector_) detector_->on_release(w.tid, h.site);
        engine_->gate_out(*w.rctx, h.gate, core::AccessKind::kOther);
        return;
    }
  }

  /// `#pragma omp atomic` update (RMW: kOther, never epoch-parallel).
  template <typename T>
  T atomic_fetch_add(WorkerCtx& w, Handle h, std::atomic<T>& loc, T delta) {
    switch (kind_) {
      case RunKind::kOff:
        return loc.fetch_add(delta, std::memory_order_relaxed);
      case RunKind::kDetect: {
        // Atomics synchronize; model as a lock keyed by the site so racing
        // `omp atomic` updates are not (falsely) reported.
        detector_->on_acquire(w.tid, h.site);
        const T old = loc.fetch_add(delta, std::memory_order_relaxed);
        detector_->on_release(w.tid, h.site);
        return old;
      }
      case RunKind::kRecord:
      case RunKind::kReplay:
        return engine_->sma_fetch_add(*w.rctx, h.gate, loc, delta);
      case RunKind::kExplore: {
        engine_->gate_in(*w.rctx, h.gate, core::AccessKind::kOther);
        if (detector_) detector_->on_acquire(w.tid, h.site);
        const T old = loc.fetch_add(delta, std::memory_order_relaxed);
        if (detector_) detector_->on_release(w.tid, h.site);
        engine_->gate_out(*w.rctx, h.gate, core::AccessKind::kOther);
        return old;
      }
    }
    return T{};
  }

  /// Racy (intentionally unsynchronized) load — Condition-1 eligible.
  template <typename T>
  T racy_load(WorkerCtx& w, Handle h, const std::atomic<T>& loc) {
    switch (kind_) {
      case RunKind::kOff:
        return loc.load(std::memory_order_relaxed);
      case RunKind::kDetect:
        detector_->on_read(*w.dclock, reinterpret_cast<std::uintptr_t>(&loc),
                           h.site);
        return loc.load(std::memory_order_relaxed);
      case RunKind::kRecord:
      case RunKind::kReplay:
        if (h.gate == core::kInvalidGate) {  // race-free per the plan
          return loc.load(std::memory_order_relaxed);
        }
        return engine_->sma_load(*w.rctx, h.gate, loc);
      case RunKind::kExplore: {
        // Un-gated sites stay outside the imposed schedule; the oracle
        // still observes them (with their natural racy timing). Gated
        // sites feed the oracle INSIDE the region — while the explore
        // token is held — so the detector's event order is a pure
        // function of the imposed schedule and verdicts are
        // seed-deterministic.
        if (h.gate == core::kInvalidGate) {
          if (detector_) {
            detector_->on_read(*w.dclock,
                               reinterpret_cast<std::uintptr_t>(&loc), h.site);
          }
          return loc.load(std::memory_order_relaxed);
        }
        engine_->gate_in(*w.rctx, h.gate, core::AccessKind::kLoad);
        if (detector_) {
          detector_->on_read(*w.dclock, reinterpret_cast<std::uintptr_t>(&loc),
                             h.site);
        }
        const T v = loc.load(std::memory_order_relaxed);
        engine_->gate_out(*w.rctx, h.gate, core::AccessKind::kLoad);
        return v;
      }
    }
    return T{};
  }

  /// Racy store — Condition-1 eligible.
  template <typename T>
  void racy_store(WorkerCtx& w, Handle h, std::atomic<T>& loc, T value) {
    switch (kind_) {
      case RunKind::kOff:
        loc.store(value, std::memory_order_relaxed);
        return;
      case RunKind::kDetect:
        detector_->on_write(*w.dclock, reinterpret_cast<std::uintptr_t>(&loc),
                            h.site);
        loc.store(value, std::memory_order_relaxed);
        return;
      case RunKind::kRecord:
      case RunKind::kReplay:
        if (h.gate == core::kInvalidGate) {
          loc.store(value, std::memory_order_relaxed);
          return;
        }
        engine_->sma_store(*w.rctx, h.gate, loc, value);
        return;
      case RunKind::kExplore:
        // Same oracle placement rules as racy_load above.
        if (h.gate == core::kInvalidGate) {
          if (detector_) {
            detector_->on_write(*w.dclock,
                                reinterpret_cast<std::uintptr_t>(&loc),
                                h.site);
          }
          loc.store(value, std::memory_order_relaxed);
          return;
        }
        engine_->gate_in(*w.rctx, h.gate, core::AccessKind::kStore);
        if (detector_) {
          detector_->on_write(*w.dclock, reinterpret_cast<std::uintptr_t>(&loc),
                              h.site);
        }
        loc.store(value, std::memory_order_relaxed);
        engine_->gate_out(*w.rctx, h.gate, core::AccessKind::kStore);
        return;
    }
  }

  /// Racy read-modify-write expressed as load;op;store — this is the
  /// paper's `data race` benchmark pattern (`sum += 1` with no clause).
  template <typename T, typename Op>
  void racy_update(WorkerCtx& w, Handle h, std::atomic<T>& loc, Op&& op) {
    const T old = racy_load(w, h, loc);
    racy_store(w, h, loc, op(old));
  }

  // ---- accessors ----

  [[nodiscard]] RunKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t num_threads() const { return opt_.num_threads; }
  core::Engine& engine() { return *engine_; }
  race::Detector* detector() { return detector_.get(); }
  race::SiteRegistry& sites() { return sites_; }

  /// Finalize the engine (flush record streams / check replay consumed).
  void finalize();

 private:
  void worker_loop(std::uint32_t tid);
  void run_workers(const std::function<void(WorkerCtx&)>& fn);
  /// Called from a catch block: latch the exception as first_error_, then
  /// (replay runs) poison the engine so the surviving threads unwind
  /// instead of waiting forever for the dead thread's gates.
  void note_task_error(std::uint32_t tid);

  TeamOptions opt_;
  RunKind kind_ = RunKind::kOff;

  std::unique_ptr<core::Engine> engine_;
  race::SiteRegistry sites_;
  std::unique_ptr<race::Detector> detector_;

  // Critical-section mutexes for off/detect modes, striped by site id so
  // independent named criticals run concurrently (same-stripe collisions
  // only over-serialize, never under-lock).
  static constexpr std::uint32_t kCritStripes = 16;
  std::mutex& crit_mutex(Handle h) {
    return crit_mu_[(h.site * 0x9e3779b9u >> 16) % kCritStripes];
  }
  std::mutex crit_mu_[kCritStripes];

  // Fork-join pool (workers are tids 1..N-1; the caller is tid 0).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::uint64_t generation_ = 0;  // under pool_mu_
  std::uint32_t sleepers_ = 0;    // under pool_mu_: workers parked on the cv
  // Hot spin targets each get their own cache line: workers spin-read
  // generation_pub_ while peers hammer outstanding_ / barrier counters —
  // sharing a line turns every decrement into a team-wide invalidation
  // storm (quadratic in team size).
  CachePadded<std::atomic<std::uint64_t>> generation_pub_{};  // spin mirror
  CachePadded<std::atomic<const std::function<void(WorkerCtx&)>*>> task_pub_{};
  CachePadded<std::atomic<std::uint32_t>> outstanding_{};
  CachePadded<std::atomic<bool>> shutdown_{};

  // Team barrier with a detector hook run by the last arriver.
  CachePadded<std::atomic<std::uint32_t>> barrier_arrived_{};
  CachePadded<std::atomic<std::uint64_t>> barrier_phase_{};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace reomp::romp
