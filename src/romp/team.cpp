#include "src/romp/team.hpp"

#include <algorithm>

#include "src/common/affinity.hpp"
#include "src/common/log.hpp"
#include "src/common/waiter.hpp"
#include "src/core/explore_authority.hpp"

namespace reomp::romp {

Team::Team(TeamOptions opt) : opt_(std::move(opt)) {
  if (opt_.num_threads == 0) {
    throw std::invalid_argument("Team requires num_threads >= 1");
  }
  opt_.engine.num_threads = opt_.num_threads;

  if (opt_.detect && opt_.engine.mode == core::Mode::kExplore) {
    // Explore + detect: the one combination where engine and detector run
    // together — the detector is the oracle deciding which imposed
    // schedule tripped a race, and the engine records that schedule so
    // the verdict is immediately replayable.
    kind_ = RunKind::kExplore;
  } else if (opt_.detect) {
    kind_ = RunKind::kDetect;
    opt_.engine.mode = core::Mode::kOff;  // detector and engine are separate runs
  } else {
    switch (opt_.engine.mode) {
      case core::Mode::kOff: kind_ = RunKind::kOff; break;
      case core::Mode::kRecord: kind_ = RunKind::kRecord; break;
      case core::Mode::kReplay: kind_ = RunKind::kReplay; break;
      case core::Mode::kExplore: kind_ = RunKind::kExplore; break;
    }
  }

  engine_ = std::make_unique<core::Engine>(opt_.engine);
  if (opt_.detect) {
    detector_ = std::make_unique<race::Detector>(opt_.num_threads, sites_,
                                                 opt_.engine.shadow_shards,
                                                 opt_.engine.sync_stripes);
  }

  if (opt_.pin_threads) pin_current_thread(0);

  if (kind_ == RunKind::kReplay) {
    // The poison wake storm must reach the team's own wait words too: a
    // replay thread can be parked at the join or a barrier when a peer is
    // poisoned at a gate. Registered before any worker can park.
    engine_->add_replay_wake_hook([this] {
      Waiter::notify(*outstanding_);
      Waiter::notify(*barrier_phase_);
    });
  }

  workers_.reserve(opt_.num_threads - 1);
  for (std::uint32_t tid = 1; tid < opt_.num_threads; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

Team::~Team() {
  shutdown_->store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    ++generation_;
    generation_pub_->store(generation_, std::memory_order_release);
  }
  pool_cv_.notify_all();
  for (auto& w : workers_) w.join();
  try {
    finalize();
  } catch (const std::exception& e) {
    REOMP_LOG_ERROR << "Team finalize in destructor failed: " << e.what();
  }
}

Handle Team::register_handle(const std::string& name) {
  Handle h;
  h.gate = engine_->register_gate(name);
  h.site = sites_.intern(name);
  return h;
}

Handle Team::register_handle_with_plan(const std::string& name,
                                       const race::InstrumentPlan& plan) {
  Handle h;
  h.site = sites_.intern(name);
  if (auto gate_name = plan.gate_for(name)) {
    h.gate = engine_->register_gate(*gate_name);
  }
  return h;
}

void Team::worker_loop(std::uint32_t tid) {
  // Census registration feeds the kAuto escalation: once a team's workers
  // outnumber the cores, every adaptive wait in the process knows to park
  // early instead of burning quanta.
  ThreadCensus::Scope census;
  if (opt_.pin_threads) pin_current_thread(tid);
  core::ThreadCtx& rctx = engine_->bind_thread(tid);
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Hybrid wait: spin briefly (HPC apps launch parallel regions back to
    // back — OpenMP runtimes default to active waiting between regions),
    // then park on the condition variable so an idle team does not burn
    // cores. The hot path is mutex-free: the task pointer is published
    // through an atomic before the generation bump, so acquiring the
    // generation also acquires the task (23 workers serially taking a
    // futex mutex per region would dominate the launch).
    // Oversubscribed teams skip the spin phase: on a time-sliced core the
    // whole budget elapses inside one quantum without the launcher ever
    // running, so it only delays the cv park that lets the launcher run.
    bool ready = false;
    {
      const int spin_budget = ThreadCensus::oversubscribed() ? 0 : 20000;
      Waiter waiter(WaitPolicy::kSpin);
      for (int spin = 0; spin < spin_budget; ++spin) {
        if (generation_pub_->load(std::memory_order_acquire) !=
                seen_generation ||
            shutdown_->load(std::memory_order_acquire)) {
          ready = true;
          break;
        }
        waiter.pause();
      }
    }
    if (!ready) {
      // A cv-parked idle worker burns no CPU: step out of the runnable
      // census for the nap so concurrently-running teams (or the record
      // path after this team goes idle) are not misclassified as
      // oversubscribed.
      ThreadCensus::ParkedScope parked;
      std::unique_lock<std::mutex> lock(pool_mu_);
      ++sleepers_;
      pool_cv_.wait(lock, [&] {
        return generation_ != seen_generation ||
               shutdown_->load(std::memory_order_acquire);
      });
      --sleepers_;
    }
    if (shutdown_->load(std::memory_order_acquire)) return;
    seen_generation = generation_pub_->load(std::memory_order_acquire);
    const auto* task = task_pub_->load(std::memory_order_acquire);

    WorkerCtx ctx{tid, this, &rctx,
                  detector_ ? &detector_->thread_clock(tid) : nullptr};
    try {
      (*task)(ctx);
    } catch (...) {
      note_task_error(tid);
    }
    // Explore: report task completion (normal or thrown) to the scheduler
    // BEFORE the join decrement, so a quiescence decision never waits on a
    // thread that already left the region.
    if (kind_ == RunKind::kExplore) engine_->explorer()->done(tid);
    // The joiner only resumes at zero, so only the last worker must wake
    // it; intermediate decrements change the word, which is enough to
    // bounce a concurrently-parking joiner off its futex re-check.
    if (outstanding_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Waiter::notify(*outstanding_);
    }
  }
}

void Team::parallel(const std::function<void(WorkerCtx&)>& fn) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = nullptr;
  }
  // Explore: pre-mark EVERY thread Running before the task is published.
  // A scheduling decision may then never depend on which workers have
  // woken from the pool yet — the first decision fires only once all
  // threads have reached their first scheduling point.
  if (kind_ == RunKind::kExplore) engine_->explorer()->begin_region();
  outstanding_->store(opt_.num_threads - 1, std::memory_order_release);
  task_pub_->store(&fn, std::memory_order_release);
  bool wake_sleepers;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    ++generation_;
    generation_pub_->store(generation_, std::memory_order_release);
    wake_sleepers = sleepers_ > 0;
  }
  if (wake_sleepers) pool_cv_.notify_all();

  // The caller participates as tid 0, like an OpenMP primary thread.
  WorkerCtx ctx{0, this, &engine_->bind_thread(0),
                detector_ ? &detector_->thread_clock(0) : nullptr};
  try {
    fn(ctx);
  } catch (...) {
    note_task_error(0);
  }
  if (kind_ == RunKind::kExplore) engine_->explorer()->done(0);

  // Adaptive join: workers decrement `outstanding_` as they finish; the
  // last one notifies, so a starved joiner parks on the count instead of
  // spinning against the very workers it waits for.
  //
  // The join NEVER aborts on poison — it is bounded by the workers
  // unwinding (every worker decrements on its way out, normal, thrown, or
  // poisoned), and abandoning it would let a re-launched region race this
  // one's stragglers. The wait site is published as diagnostic-only
  // kTeamJoin so a stall report still shows where tid 0 sits.
  core::WaitScope site(ctx.rctx->telemetry);
  Waiter waiter(opt_.sync_policy);
  std::uint32_t left;
  while ((left = outstanding_->load(std::memory_order_acquire)) != 0) {
    site.arm(core::WaitKind::kTeamJoin, core::kInvalidGate, 0,
             opt_.sync_policy, left);
    site.poll(left, waiter.would_park());
    waiter.pause_wait(*outstanding_, left);
  }
  if (kind_ == RunKind::kExplore) engine_->explorer()->end_region();

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void Team::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(WorkerCtx&, std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = std::max<std::int64_t>(0, end - begin);
  const std::int64_t p = opt_.num_threads;
  parallel([&](WorkerCtx& w) {
    // Block (static) schedule: worker k gets the k-th contiguous slice.
    const std::int64_t lo = begin + n * w.tid / p;
    const std::int64_t hi = begin + n * (w.tid + 1) / p;
    if (lo < hi) body(w, lo, hi);
  });
}

void Team::parallel_for_dynamic(
    std::int64_t begin, std::int64_t end, std::int64_t chunk, Handle h,
    const std::function<void(WorkerCtx&, std::int64_t, std::int64_t)>& body) {
  if (chunk <= 0) chunk = 1;
  std::atomic<std::int64_t> next{begin};
  parallel([&](WorkerCtx& w) {
    for (;;) {
      // The claim itself is a nondeterministic shared-memory access: gate
      // it so chunk-to-thread assignment records and replays (the paper
      // lists task scheduling as the natural extension of this design).
      const std::int64_t lo =
          atomic_fetch_add<std::int64_t>(w, h, next, chunk);
      if (lo >= end) break;
      body(w, lo, std::min(end, lo + chunk));
    }
  });
}

void Team::barrier(WorkerCtx& w) {
  if (kind_ == RunKind::kExplore) {
    auto* ex = engine_->explorer();
    // Arrival is itself a scheduling point: grant order = arrival order,
    // so the arrived count below is deterministic even when a barrier
    // precedes any gate in the region (fan-in threads run concurrently
    // until their first scheduling point).
    ex->arrive(w.rctx->telemetry, w.tid, core::kInvalidGate);
    const std::uint64_t phase = barrier_phase_->load(std::memory_order_acquire);
    if (barrier_arrived_->fetch_add(1, std::memory_order_acq_rel) ==
        opt_.num_threads - 1) {
      // Last arriver (token held, everyone else Blocked): the detector's
      // all-to-all join runs at a schedule-deterministic point.
      if (detector_) detector_->on_barrier();
      barrier_arrived_->store(0, std::memory_order_relaxed);
      barrier_phase_->store(phase + 1, std::memory_order_release);
      Waiter::notify(*barrier_phase_);
      ex->barrier_released();
    } else {
      ex->block(w.tid);
      core::WaitScope site(w.rctx->telemetry);
      Waiter waiter(opt_.sync_policy);
      while (barrier_phase_->load(std::memory_order_acquire) == phase) {
        site.arm(core::WaitKind::kTeamBarrier, core::kInvalidGate, phase + 1,
                 opt_.sync_policy, phase);
        site.poll(phase, waiter.would_park());
        waiter.pause_wait(*barrier_phase_, phase);
      }
      ex->await_resume(w.rctx->telemetry, w.tid);
    }
    return;
  }
  const std::uint64_t phase = barrier_phase_->load(std::memory_order_acquire);
  if (barrier_arrived_->fetch_add(1, std::memory_order_acq_rel) ==
      opt_.num_threads - 1) {
    // Last arriver: run the detector's all-to-all join while everyone else
    // is parked, then release the phase.
    if (detector_) detector_->on_barrier();
    barrier_arrived_->store(0, std::memory_order_relaxed);
    barrier_phase_->store(phase + 1, std::memory_order_release);
    Waiter::notify(*barrier_phase_);
  } else {
    // Unlike the join, a barrier CAN wait forever on a poisoned replay —
    // the missing arrivers may all be stuck at gates — so replay runs
    // make it an abortable wait site.
    core::WaitScope site(w.rctx->telemetry);
    Waiter waiter(opt_.sync_policy);
    while (barrier_phase_->load(std::memory_order_acquire) == phase) {
      site.arm(core::WaitKind::kTeamBarrier, core::kInvalidGate, phase + 1,
               opt_.sync_policy, phase);
      site.poll(phase, waiter.would_park());
      if (kind_ == RunKind::kReplay) {
        if (waiter.pause_wait_or_abort(*barrier_phase_, phase,
                                       engine_->poison_word())) {
          engine_->throw_poisoned(w.tid);
        }
      } else {
        waiter.pause_wait(*barrier_phase_, phase);
      }
    }
  }
}

void Team::note_task_error(std::uint32_t tid) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    // Latch BEFORE poisoning: the escaping exception must win the rethrow
    // over the ReplayDivergence cascade the poison is about to cause in
    // every other thread.
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (kind_ != RunKind::kReplay) return;
  std::string what = "unknown exception";
  try {
    throw;
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  engine_->poison_replay("thread " + std::to_string(tid) +
                         " exited its parallel region early: " + what);
}

void Team::finalize() { engine_->finalize(); }

}  // namespace reomp::romp
