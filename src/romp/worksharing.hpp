// Worksharing constructs beyond loops: single, master, sections.
//
// `single` and `sections` are nondeterministic — *which* thread executes
// depends on arrival order — so their claim operations are gated atomic
// RMWs (kOther): the record pins the winner, replay reproduces it. This is
// exactly how ReOMP instruments the corresponding __kmpc_single /
// __kmpc_sections runtime entry points (paper §V: "we can also instrument
// other potential shared-memory accesses, such as ... the master and the
// single clauses").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/romp/team.hpp"

namespace reomp::romp {

/// Claim state for a repeated `single` construct. One instance per lexical
/// construct; every team member must call Team-wide once per round (the
/// OpenMP rule that all threads encounter the single).
struct SingleState {
  std::atomic<std::uint64_t> tickets{0};
};

/// `#pragma omp single` body: the first arriving thread each round executes
/// `fn`. Returns true on the executing thread. No implied barrier — pair
/// with Team::barrier when the OpenMP default (implicit barrier) is wanted.
template <typename Fn>
bool single(Team& team, WorkerCtx& w, Handle h, SingleState& state, Fn&& fn) {
  // Gated claim: arrival order is recorded, so the round winner replays.
  const std::uint64_t ticket =
      team.atomic_fetch_add<std::uint64_t>(w, h, state.tickets, 1);
  const bool winner = ticket % team.num_threads() == 0;
  if (winner) fn();
  return winner;
}

/// `#pragma omp master`: deterministic (always thread 0), so no gate.
template <typename Fn>
bool master(const WorkerCtx& w, Fn&& fn) {
  if (w.tid != 0) return false;
  fn();
  return true;
}

/// Claim state for one `sections` construct instance (one-shot: create a
/// fresh state per execution of the construct).
struct SectionsState {
  std::atomic<std::uint64_t> cursor{0};
};

/// `#pragma omp sections`: each section body runs exactly once, claimed
/// dynamically by whichever thread gets there first. Section-to-thread
/// assignment is the recorded nondeterminism. Call from every team member.
inline void sections(Team& team, WorkerCtx& w, Handle h, SectionsState& state,
                     const std::vector<std::function<void()>>& bodies) {
  for (;;) {
    const std::uint64_t i =
        team.atomic_fetch_add<std::uint64_t>(w, h, state.cursor, 1);
    if (i >= bodies.size()) break;
    bodies[i]();
  }
}

}  // namespace reomp::romp
