// Detector sync-path microbenchmark: the vector-clock engine under
// lock-heavy / barrier-heavy / fork-join / racy-alternation mixes, new
// arena implementation against the pre-PR detector (compiled in verbatim
// from the PR 3 tree as race::prepr — see detector_prepr.hpp), plus a
// barrier-cost scaling sweep over simulated thread counts.
//
// Mixes (one detector tid per OS thread; at 1 OS thread eight simulated
// tids are driven round-robin — the single-threaded drive measures pure
// detector cost at a realistic team size, per the other benches' 8-thread
// focus):
//   lock-heavy       — private-lock acquire/release cycles (the `omp
//                      atomic` shape: both release-shortcut sides hit)
//                      with a nested shared lock + write every 16th iter
//   barrier-heavy    — a handful of accesses between team barriers (the
//                      broadcast-clock steady state)
//   fork-join        — fork/access/join trees between neighbour tids
//   racy-alternation — the racy-app profile (quicksilver/amg shape):
//                      atomic tallies + private progress alternation + the
//                      racy shared peek/update pair (a race recorded per
//                      access) + a read-mostly flag cycling read-share
//                      promotion -> collapse -> pool recycle
//   alternation-pure — ONLY the strict write/read alternation per private
//                      variable (the ROADMAP-flagged miss), reported for
//                      transparency: its exact-parity floor is one CAS per
//                      access (see detector.cpp), so its ceiling against
//                      an uncontended single-core baseline is modest
//
// Standalone binary (no google-benchmark) so the tier-1 smoke run is fast
// and deterministic:
//   bench_detector_sync [--smoke] [--json PATH] [--iters N] [--threads N]
//
// --smoke runs tiny iteration counts and exits nonzero if the sync or
// access fast paths failed to engage or the two implementations disagree
// on whether a mix races; speedups are printed, not asserted (timing is
// host-dependent).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/detector_prepr.hpp"
#include "src/race/detector.hpp"

namespace {

using reomp::race::SiteId;
using reomp::race::SiteRegistry;
using ArenaDetector = reomp::race::Detector;
using PreprDetector = reomp::race::prepr::Detector;

enum class Mix {
  kLockHeavy,
  kBarrierHeavy,
  kForkJoin,
  kRacyAlternation,
  kAlternationPure,
};

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::kLockHeavy: return "lock-heavy";
    case Mix::kBarrierHeavy: return "barrier-heavy";
    case Mix::kForkJoin: return "fork-join";
    case Mix::kRacyAlternation: return "racy-alternation";
    case Mix::kAlternationPure: return "alternation-pure";
  }
  return "?";
}

constexpr std::uintptr_t kPrivateBase = 0x100000;
constexpr std::uintptr_t kSharedBase = 0x200000;

/// Sense barrier for the multi-OS-thread barrier-heavy mix: the last
/// arriver runs the detector's on_barrier while everyone else is parked,
/// mirroring romp::Team::barrier.
struct SenseBarrier {
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint64_t> phase{0};
  std::uint32_t parties = 1;

  template <typename Fn>
  void arrive(Fn&& last_arriver_op) {
    const std::uint64_t p = phase.load(std::memory_order_acquire);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) == parties - 1) {
      last_arriver_op();
      arrived.store(0, std::memory_order_relaxed);
      phase.store(p + 1, std::memory_order_release);
    } else {
      while (phase.load(std::memory_order_acquire) == p) {
        std::this_thread::yield();
      }
    }
  }
};

/// Ops issued by detector tid `tid` for one iteration of the mix; returns
/// the number of detector events issued. `D` is ArenaDetector or
/// PreprDetector (same verbs).
template <typename D>
std::uint64_t mix_iter(D& d, Mix mix, std::uint32_t tid, std::uint32_t nthreads,
                       std::uint64_t i, SiteId site, SenseBarrier* bar) {
  const std::uintptr_t mine = kPrivateBase + 64 * tid;
  switch (mix) {
    case Mix::kLockHeavy: {
      const std::uint64_t priv = 100 + tid;
      if ((i & 15) == 0) {  // nested shared lock + guarded write
        // A real mutex backs the modeled lock so the release->acquire
        // chain the detector sees is an actual serialization at >1 OS
        // thread and the mix stays deterministically race-free.
        static std::mutex real_mu;
        std::lock_guard<std::mutex> real(real_mu);
        d.on_acquire(tid, priv);
        d.on_acquire(tid, 7);
        d.on_write(tid, kSharedBase, site);
        d.on_release(tid, 7);
        d.on_release(tid, priv);
        return 5;
      }
      // The dominant shape: an uncontended acquire/release pair per
      // gated atomic, no shadow access (RMWs are modeled as sync only).
      d.on_acquire(tid, priv);
      d.on_release(tid, priv);
      return 2;
    }
    case Mix::kBarrierHeavy: {
      d.on_write(tid, mine, site);
      d.on_read(tid, mine, site);
      if (bar != nullptr) {
        bar->arrive([&] { d.on_barrier(); });
      } else {
        // Single-OS-thread drive: the round-robin caller invokes the
        // barrier once per full rotation (tid == last).
        if (tid == nthreads - 1) d.on_barrier();
      }
      return 3;
    }
    case Mix::kForkJoin: {
      // `tid` is the parent of a disjoint (parent, child) pair: fork/join
      // touch both clocks, so the pair must be quiescent — each driver
      // owns its own pair (real runtimes fork/join threads at region
      // boundaries, not while they run).
      const std::uint32_t child = tid + 1;
      d.on_fork(tid, child);
      d.on_write(tid, mine, site);
      d.on_join(tid, child);
      return 3;
    }
    case Mix::kRacyAlternation: {
      // The two ROADMAP-flagged racy patterns together: strict same-site
      // write/read alternation per private variable (pre-PR: a shard lock
      // per access; post-PR: one CAS), the racy shared peek/update pair
      // (the paper's `sum += 1` data race — a race occurrence recorded
      // per access, hitting the hot-pair cache vs the pre-PR report
      // lock), and a read-mostly shared flag cycling read-share
      // promotion -> collapse -> pool recycle (a malloc/free pair per
      // cycle in the pre-PR pool, an arena-row memset here).
      const std::uintptr_t mine2 = mine + 8;
      d.on_write(tid, mine, site);
      d.on_read(tid, mine, site);
      d.on_write(tid, mine2, site);
      d.on_read(tid, mine2, site);
      const std::uintptr_t balance = kSharedBase;  // racy peek/update
      d.on_read(tid, balance, site);
      d.on_write(tid, balance, site);
      const std::uintptr_t flag = kSharedBase + 64 * (1 + (i & 1));
      d.on_read(tid, flag, site);  // promotes toward read-shared
      if (tid == nthreads - 1) {
        d.on_write(tid, flag, site);  // publisher collapses + recycles
        return 8;
      }
      return 7;
    }
    case Mix::kAlternationPure: {
      // Strict same-site write/read alternation per private variable, and
      // nothing else — the exact ROADMAP-flagged pattern. Pre-PR, every
      // access takes the shard lock; post-PR the steady state is one CAS
      // per access (the exact-parity floor: the reference's write rule
      // subsumes reads, so the read state must genuinely toggle).
      const std::uintptr_t mine2 = mine + 8;
      d.on_write(tid, mine, site);
      d.on_read(tid, mine, site);
      d.on_write(tid, mine2, site);
      d.on_read(tid, mine2, site);
      return 4;
    }
  }
  return 0;
}

struct Result {
  Mix mix;
  std::uint32_t os_threads;
  std::uint32_t sim_threads;
  const char* impl;
  double events_per_sec;
  std::uint64_t fast_hits;
  std::uint64_t sync_hits;
  std::uint64_t races;
};

template <typename D>
Result run_mix(Mix mix, std::uint32_t os_threads, std::uint64_t iters,
               const char* impl_name) {
  // At 1 OS thread, drive 8 simulated tids round-robin: sync edges exist,
  // clocks have realistic width, and the drive itself adds no contention —
  // pure detector cost, measurable on a 1-core host. The fork-join mix
  // assigns each driver a disjoint (parent, child) tid pair, so its
  // detector is twice as wide as its driver count.
  const bool fj = mix == Mix::kForkJoin;
  const std::uint32_t drivers = os_threads == 1 ? (fj ? 4 : 8) : os_threads;
  const std::uint32_t sim = fj ? 2 * drivers : drivers;
  SiteRegistry sites;
  std::vector<SiteId> site_of(sim);
  for (std::uint32_t t = 0; t < sim; ++t) {
    site_of[t] = sites.intern("bench:t" + std::to_string(t));
  }
  D d(sim, sites);
  std::atomic<std::uint64_t> total_events{0};
  // Driver k acts as detector tid 2k (parent of pair (2k, 2k+1)) in the
  // fork-join mix, tid k otherwise.
  const auto tid_of = [fj](std::uint32_t k) { return fj ? 2 * k : k; };

  const auto t0 = std::chrono::steady_clock::now();
  if (os_threads == 1) {
    std::uint64_t events = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
      for (std::uint32_t k = 0; k < drivers; ++k) {
        const std::uint32_t t = tid_of(k);
        events += mix_iter(d, mix, t, sim, i, site_of[t], nullptr);
      }
    }
    total_events.store(events);
  } else {
    SenseBarrier bar;
    bar.parties = os_threads;
    std::atomic<std::uint32_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    auto work = [&](std::uint32_t k) {
      const std::uint32_t t = tid_of(k);
      std::uint64_t events = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        events += mix_iter(d, mix, t, sim, i, site_of[t],
                           mix == Mix::kBarrierHeavy ? &bar : nullptr);
      }
      total_events.fetch_add(events);
    };
    for (std::uint32_t t = 1; t < os_threads; ++t) {
      pool.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {}
        work(t);
      });
    }
    while (ready.load() != os_threads - 1) {}
    go.store(true, std::memory_order_release);
    work(0);
    for (auto& th : pool) th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return Result{mix,
                os_threads,
                sim,
                impl_name,
                static_cast<double>(total_events.load()) /
                    (secs > 0 ? secs : 1e-9),
                d.fast_path_hits(),
                d.sync_fast_hits(),
                d.races_observed()};
}

struct BarrierPoint {
  std::uint32_t sim_threads;
  const char* impl;
  double ns_per_barrier;
};

/// Barrier-cost scaling at simulated thread counts, one OS thread driving:
/// the steady-state cost of on_barrier alone. O(T) for the arena detector
/// (broadcast row), O(T^2) for the pre-PR all-join/all-copy loop.
template <typename D>
BarrierPoint run_barrier_scaling(std::uint32_t sim, std::uint64_t reps,
                                 const char* impl_name) {
  SiteRegistry sites;
  sites.intern("bench:barrier");
  D d(sim, sites);
  d.on_barrier();  // warm: first barrier pays initialization
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < reps; ++i) d.on_barrier();
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return BarrierPoint{sim, impl_name, ns / static_cast<double>(reps)};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::uint64_t iters = 400'000;
  std::uint32_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      iters = 5'000;
      max_threads = 4;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--iters N] "
                   "[--threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  bool ok = true;
  std::vector<Result> results;
  std::printf("%-17s %4s %4s %-7s %14s %12s %12s %8s\n", "mix", "os", "sim",
              "impl", "events/s", "fast_hits", "sync_hits", "races");
  for (Mix mix : {Mix::kLockHeavy, Mix::kBarrierHeavy, Mix::kForkJoin,
                  Mix::kRacyAlternation, Mix::kAlternationPure}) {
    for (std::uint32_t os_threads : {1u, max_threads}) {
      if (os_threads == 0) continue;
      // Collectives per iteration dominate these mixes; trim so full runs
      // stay bounded on 1-core hosts.
      const std::uint64_t n =
          (mix == Mix::kBarrierHeavy || mix == Mix::kForkJoin) ? iters / 8
                                                               : iters;
      const Result arena = run_mix<ArenaDetector>(mix, os_threads, n, "arena");
      const Result prepr = run_mix<PreprDetector>(mix, os_threads, n, "prepr");
      for (const Result& r : {arena, prepr}) {
        std::printf("%-17s %4u %4u %-7s %14.0f %12llu %12llu %8llu\n",
                    mix_name(r.mix), r.os_threads, r.sim_threads, r.impl,
                    r.events_per_sec,
                    static_cast<unsigned long long>(r.fast_hits),
                    static_cast<unsigned long long>(r.sync_hits),
                    static_cast<unsigned long long>(r.races));
        results.push_back(r);
      }
      std::printf("%-17s %4u %4u %-7s %13.2fx\n", mix_name(mix), os_threads,
                  arena.sim_threads, "speedup",
                  arena.events_per_sec / prepr.events_per_sec);

      // Smoke validation (functional, not timing): the new fast paths must
      // engage and both implementations must agree on whether the mix
      // races at all.
      if (mix == Mix::kLockHeavy && arena.sync_hits == 0) {
        std::fprintf(stderr,
                     "FAIL: release-shortcut never engaged (%s, %u os thr)\n",
                     mix_name(mix), os_threads);
        ok = false;
      }
      if ((mix == Mix::kRacyAlternation || mix == Mix::kAlternationPure) &&
          os_threads == 1 && arena.fast_hits == 0) {
        std::fprintf(stderr, "FAIL: alternation accesses never fast-pathed\n");
        ok = false;
      }
      if ((arena.races > 0) != (prepr.races > 0)) {
        std::fprintf(stderr, "FAIL: verdict mismatch (%s, %u os thr)\n",
                     mix_name(mix), os_threads);
        ok = false;
      }
      if (mix != Mix::kRacyAlternation && os_threads == 1 &&
          arena.races != 0) {  // alternation-pure is private => race-free
        // The non-racy mixes are data-race-free by construction (private
        // vars or lock/barrier/fork ordering) when driven round-robin.
        std::fprintf(stderr, "FAIL: false positive (%s)\n", mix_name(mix));
        ok = false;
      }
      if (mix == Mix::kRacyAlternation && os_threads == 1 &&
          arena.races == 0) {
        // The shared-variable cycle races by construction.
        std::fprintf(stderr, "FAIL: racy mix reported no races\n");
        ok = false;
      }
    }
  }

  // Barrier-cost scaling over simulated thread counts (single OS thread).
  std::vector<BarrierPoint> barrier_points;
  const std::uint64_t reps = smoke ? 2'000 : 200'000;
  std::printf("%-17s %4s %-7s %14s\n", "barrier-scaling", "sim", "impl",
              "ns/barrier");
  for (const std::uint32_t sim : {2u, 8u, 64u}) {
    const auto a = run_barrier_scaling<ArenaDetector>(sim, reps, "arena");
    const auto p = run_barrier_scaling<PreprDetector>(sim, reps / 4 + 1,
                                                      "prepr");
    for (const BarrierPoint& b : {a, p}) {
      std::printf("%-17s %4u %-7s %14.1f\n", "barrier", b.sim_threads, b.impl,
                  b.ns_per_barrier);
      barrier_points.push_back(b);
    }
  }
  // Scaling ratio 64 vs 8 simulated threads: ~8 means O(T), ~64 means
  // O(T^2). Printed (and recorded in the JSON); not asserted — timing.
  const double arena_ratio =
      barrier_points[4].ns_per_barrier / barrier_points[2].ns_per_barrier;
  const double prepr_ratio =
      barrier_points[5].ns_per_barrier / barrier_points[3].ns_per_barrier;
  std::printf("barrier cost ratio T=64/T=8: arena %.1fx, prepr %.1fx "
              "(O(T) ~ 8, O(T^2) ~ 64)\n",
              arena_ratio, prepr_ratio);

  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::trunc);
    f << "{\n  \"benchmark\": \"detector_sync\",\n  \"iters\": " << iters
      << ",\n  \"baseline\": \"pre-PR detector (PR3 tree) compiled in as "
         "race::prepr (bench/detector_prepr.hpp)\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      f << "    {\"mix\": \"" << mix_name(r.mix)
        << "\", \"os_threads\": " << r.os_threads
        << ", \"sim_threads\": " << r.sim_threads << ", \"impl\": \""
        << r.impl << "\", \"events_per_sec\": "
        << static_cast<std::uint64_t>(r.events_per_sec)
        << ", \"fast_hits\": " << r.fast_hits
        << ", \"sync_hits\": " << r.sync_hits << ", \"races\": " << r.races
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"barrier_scaling\": [\n";
    for (std::size_t i = 0; i < barrier_points.size(); ++i) {
      const BarrierPoint& b = barrier_points[i];
      f << "    {\"sim_threads\": " << b.sim_threads << ", \"impl\": \""
        << b.impl << "\", \"ns_per_barrier\": " << b.ns_per_barrier << "}"
        << (i + 1 < barrier_points.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"barrier_ratio_64_over_8\": {\"arena\": " << arena_ratio
      << ", \"prepr\": " << prepr_ratio << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
