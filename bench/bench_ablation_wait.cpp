// Ablation: replay waiter policy (Fig. 4 line 11 / Fig. 5 line 32). Pure
// spinning is fastest when every replay thread owns a core; once threads
// are oversubscribed, a descheduled "next" thread stalls all spinners, and
// yielding wins. Runs DE replay of data_race at the core count and at 2x
// oversubscription.
#include <cstdio>

#include "src/apps/synthetic.hpp"
#include "src/common/affinity.hpp"
#include "src/common/timer.hpp"

int main() {
  using namespace reomp;
  const std::uint32_t cores = logical_cpus();

  std::printf("=== Ablation: replay wait policy (data_race, DE) ===\n");
  std::printf("%10s %10s %12s %12s %12s %12s %12s\n", "threads", "events",
              "spin_s", "spinyield_s", "yield_s", "block_s", "auto_s");

  // Dedicated-core row at full size; oversubscribed row much smaller —
  // with threads > cores, a pure-spin replay pays up to a scheduler
  // quantum per handoff, so the same event count would run for minutes
  // (which is precisely the effect being demonstrated).
  const std::pair<std::uint32_t, double> rows[] = {
      {cores, 1.0},
      {cores + cores / 2, 0.02},
  };

  for (const auto& [threads, scale] : rows) {
    double secs[5] = {0, 0, 0, 0, 0};
    std::uint64_t events = 0;
    const WaitPolicy policies[5] = {WaitPolicy::kSpin, WaitPolicy::kSpinYield,
                                    WaitPolicy::kYield, WaitPolicy::kBlock,
                                    WaitPolicy::kAuto};
    for (int i = 0; i < 5; ++i) {
      apps::RunConfig cfg;
      cfg.threads = threads;
      cfg.scale = scale;
      cfg.pin_threads = threads <= cores;  // pinning hurts if oversubscribed
      cfg.engine.mode = core::Mode::kRecord;
      cfg.engine.strategy = core::Strategy::kDE;
      cfg.engine.wait_policy = policies[i];
      apps::RunResult rec = apps::run_synthetic_datarace(cfg);
      events = rec.gated_events;

      apps::RunConfig rcfg = cfg;
      rcfg.engine.mode = core::Mode::kReplay;
      rcfg.engine.bundle = &rec.bundle;
      WallTimer t;
      (void)apps::run_synthetic_datarace(rcfg);
      secs[i] = t.seconds();
    }
    std::printf("%10u %10llu %12.4f %12.4f %12.4f %12.4f %12.4f\n", threads,
                static_cast<unsigned long long>(events), secs[0], secs[1],
                secs[2], secs[3], secs[4]);
    std::fflush(stdout);
  }
  return 0;
}
