// Figure 13: execution time of the AMG proxy across thread counts, seven
// configurations. Expected shape: ST replay degrades sharply with thread
// count (the paper clipped it at 200 s); DC/DE stay close to the record
// runs, with modest DE gains (AMG's parallel-epoch fraction is low).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::app_by_name("AMG");
  constexpr double kScale = 1.0;
  benchx::register_figure("fig13_amg", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 13: OpenMP AMG", app, kScale);
  });
}
