// Figure 19: OpenMP+MPI HPCCG under ReMPI+ReOMP (DE), sweeping rank/thread
// combinations. Expected shape: as Fig. 18 — small, scale-independent
// record/replay overhead.
#include "bench/bench_hybrid_common.hpp"

int main() {
  reomp::benchx::run_hybrid_figure("Figure 19: OpenMP+MPI HPCCG",
                                   reomp::apps::run_hybrid_hpccg,
                                   /*scale=*/1.0);
  return 0;
}
