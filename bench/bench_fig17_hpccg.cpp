// Figure 17: execution time of the HPCCG proxy across thread counts.
// Expected shape: DC/DE replay beats ST replay; DE beats DC clearly
// (paper: 57% parallel epochs, 3.37x vs 1.91x replay speedup).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::app_by_name("HPCCG");
  constexpr double kScale = 1.0;
  benchx::register_figure("fig17_hpccg", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 17: OpenMP HPCCG", app, kScale);
  });
}
