// Figure 11: execution time of omp_atomic across thread counts.
//
// Expected shape (paper §VI-A3): like omp_critical — DC/DE beat ST in both
// record and replay; atomics are kOther RMW so DE tracks DC. Relative
// overhead vs the uninstrumented run is much larger than for omp_critical
// because a bare atomic add is orders of magnitude cheaper than a gate.
#include "bench/bench_common.hpp"
#include "src/apps/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::synthetic_benchmarks()[2];
  constexpr double kScale = 1.0;
  benchx::register_figure("fig11_omp_atomic", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 11: omp_atomic", app, kScale);
  });
}
