// Ablation: DE access-history window (the paper's "long-enough ring
// buffer", §IV-D). X_C is capped by the window, so a short window truncates
// epochs: fewer accesses share an epoch, less replay parallelism. Sweeps
// the cap and reports record time, replay time and the parallel-epoch
// fraction for the HACC proxy (the most epoch-parallel app).
#include <cstdio>

#include "src/apps/hacc.hpp"
#include "src/common/timer.hpp"

int main() {
  using namespace reomp;
  const std::uint32_t threads = 8;
  constexpr double kScale = 1.0;
  constexpr std::uint32_t kCaps[] = {1, 2, 4, 16, 256, 1u << 20};

  std::printf("=== Ablation: DE history window (HACC, %u threads) ===\n",
              threads);
  std::printf("%10s %12s %12s %18s\n", "cap", "record_s", "replay_s",
              "parallel_epochs_%");

  for (std::uint32_t cap : kCaps) {
    apps::RunConfig cfg;
    cfg.threads = threads;
    cfg.scale = kScale;
    cfg.engine.mode = core::Mode::kRecord;
    cfg.engine.strategy = core::Strategy::kDE;
    cfg.engine.history_capacity = cap;

    WallTimer t_rec;
    apps::RunResult rec = apps::run_hacc(cfg);
    const double record_s = t_rec.seconds();

    apps::RunConfig rcfg = cfg;
    rcfg.engine.mode = core::Mode::kReplay;
    rcfg.engine.bundle = &rec.bundle;
    WallTimer t_rep;
    (void)apps::run_hacc(rcfg);
    const double replay_s = t_rep.seconds();

    std::printf("%10u %12.4f %12.4f %18.1f\n", cap, record_s, replay_s,
                100.0 * rec.epoch_histogram.parallel_epoch_fraction());
    std::fflush(stdout);
  }
  return 0;
}
