// Record-path throughput microbenchmark: gate events/sec for every
// strategy × trace-writer data path, on the synthetic data-race mix (the
// paper's `sum += 1` with no clause: one racy load + one racy store per
// iteration through a single shared gate — the worst-case gate pressure).
//
// What it quantifies, the way bench_shadow_scaling did for the detector:
//   off      — the synchronous write-behind baseline (per-entry appends,
//              fully locked DC, per-entry ST channel lock)
//   deferred — batched write-behind (ring + thresholded batch flush,
//              lock-free DC clock claim, ST group commit)
//   async    — the async trace-writer subsystem (background writer thread
//              drains the rings; record threads never encode or write)
// each in-memory (ordering cost only) and against a record directory
// (tmpfs in the intended deployment, paper §VI).
//
// Standalone binary (no google-benchmark) so the tier-1 smoke run is fast
// and deterministic:
//   bench_record_overhead [--smoke] [--json PATH] [--iters N] [--threads N]
//                         [--dir PATH]
//
// --smoke shrinks iteration counts and exits nonzero if any configuration
// loses entries (decoded stream length != gate events) or the single-thread
// decoded streams differ across data paths; speedups are printed, not
// asserted (timing is host-dependent). Full runs report best-of-3.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/bundle.hpp"
#include "src/core/engine.hpp"
#include "src/trace/manifest.hpp"
#include "src/trace/trace_dir.hpp"

namespace {

using namespace reomp;
using core::AccessKind;
using core::Engine;
using core::GateId;
using core::Mode;
using core::Options;
using core::RecordBundle;
using core::Strategy;
using core::ThreadCtx;
using core::ThreadId;
using core::TraceWriter;

struct Config {
  Strategy strategy;
  TraceWriter writer;
  trace::ContainerFormat format;
  bool to_file;
  std::uint32_t window_events = 0;  // flight recorder: cut every N events
  std::uint32_t retain = 0;         // flight recorder: keep N sealed windows
  trace::TraceCompress compress = trace::TraceCompress::kOff;
};

struct Result {
  Config cfg;
  std::uint32_t threads;
  double events_per_sec;
  std::uint64_t events;
  double bytes_per_event = 0;      // retained ON-DISK (wire) bytes / event
  double raw_bytes_per_event = 0;  // v2-anchor (uncompressed) bytes / event
  std::uint64_t windows_retained = 0;  // windowed rows only
};

/// raw/wire; 1.0 for uncompressed rows by construction.
double ratio_of(const Result& r) {
  return r.bytes_per_event > 0 ? r.raw_bytes_per_event / r.bytes_per_event
                               : 0.0;
}

constexpr Strategy kStrategies[] = {Strategy::kST, Strategy::kDC,
                                    Strategy::kDE};
constexpr TraceWriter kWriters[] = {TraceWriter::kOff, TraceWriter::kDeferred,
                                    TraceWriter::kAsync};

/// The container dimension of the sweep: the raw v1 stream, the chunked
/// v2 baseline, and the v2 chunks under each codec (internally the v3
/// container revision; off stays the bit-exact v2 ablation anchor).
struct FormatCodec {
  trace::ContainerFormat format;
  trace::TraceCompress compress;
};
constexpr FormatCodec kFormatCodecs[] = {
    {trace::ContainerFormat::kV1, trace::TraceCompress::kOff},
    {trace::ContainerFormat::kV2, trace::TraceCompress::kOff},
    {trace::ContainerFormat::kV2, trace::TraceCompress::kLz},
    {trace::ContainerFormat::kV2, trace::TraceCompress::kDeltaLz},
};

/// One record run of the data-race mix; returns events/sec and, when
/// `bundle_out` is set, the in-memory record for validation.
double run_once(const Config& cfg, std::uint32_t threads, std::uint64_t iters,
                const std::string& dir, std::uint64_t* events_out,
                RecordBundle* bundle_out, std::uint64_t* bytes_out = nullptr,
                std::uint64_t* raw_bytes_out = nullptr) {
  Options opt;
  opt.mode = Mode::kRecord;
  opt.strategy = cfg.strategy;
  opt.num_threads = threads;
  opt.trace_writer = cfg.writer;
  opt.trace_compress = cfg.compress;
  // The deferred/async rows measure the full new hot path, including the
  // opt-in lock-free DC clock claim; `off` keeps every serialization of
  // the historical baseline (dc_lockfree is ignored there anyway).
  opt.dc_lockfree = cfg.writer != TraceWriter::kOff;
  opt.trace_format = cfg.format;
  opt.trace_window_events = cfg.window_events;
  opt.trace_retain_windows = cfg.retain;
  if (cfg.to_file) opt.dir = dir;
  Engine eng(opt);
  const GateId g = eng.register_gate("sum");
  std::atomic<std::uint64_t> sum{0};

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  auto body = [&](ThreadId tid) {
    ThreadCtx& ctx = eng.bind_thread(tid);
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (std::uint64_t i = 0; i < iters; ++i) {
      // The data_race synthetic: racy load + racy store, no clause.
      const std::uint64_t v = eng.sma_load(ctx, g, sum);
      eng.sma_store(ctx, g, sum, v + 1);
    }
  };
  std::vector<std::thread> pool;
  for (ThreadId tid = 1; tid < threads; ++tid) pool.emplace_back(body, tid);
  while (ready.load() != threads - 1) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  body(0);
  for (auto& t : pool) t.join();
  eng.finalize();  // the drain/commit tail is part of the record cost
  const auto t1 = std::chrono::steady_clock::now();

  if (events_out != nullptr) *events_out = eng.total_events();
  // Raw (v2-anchor) accounting rides in the manifest: the sum of
  // StreamStat::raw_bytes over the retained stream set is what the
  // uncompressed v2 encoding of the same entries would occupy.
  const auto manifest_raw = [](const trace::Manifest& m) {
    std::uint64_t raw = 0;
    if (m.windowed) {
      for (const auto& [w, streams] : m.windows) {
        (void)w;
        for (const auto& [name, s] : streams) {
          (void)name;
          raw += s.raw_bytes;
        }
      }
    } else {
      for (const auto& [name, s] : m.streams) {
        (void)name;
        raw += s.raw_bytes;
      }
    }
    return raw;
  };
  if (bytes_out != nullptr) {
    // Retained trace footprint: the stream bytes a replay would read. For
    // the bounded flight recorder this is the ring (what survives on disk
    // after reaping), not the cumulative write volume.
    std::uint64_t total = 0;
    if (cfg.to_file) {
      for (const auto& e : std::filesystem::directory_iterator(dir)) {
        if (e.is_regular_file() &&
            e.path().filename().string().find(".rec") != std::string::npos) {
          total += e.file_size();
        }
      }
      if (raw_bytes_out != nullptr) {
        const auto m = trace::Manifest::load(trace::manifest_path(dir));
        *raw_bytes_out = m.has_value() ? manifest_raw(*m) : 0;
      }
    } else {
      RecordBundle b = eng.take_bundle();
      total += b.shared_stream.size();
      for (const auto& s : b.thread_streams) total += s.size();
      if (raw_bytes_out != nullptr) *raw_bytes_out = manifest_raw(b.manifest);
      if (bundle_out != nullptr) *bundle_out = std::move(b);
    }
    *bytes_out = total;
  } else if (bundle_out != nullptr && !cfg.to_file) {
    *bundle_out = eng.take_bundle();
  }
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(eng.total_events()) / (secs > 0 ? secs : 1e-9);
}

std::vector<trace::RecordEntry> decoded_entries(const RecordBundle& b,
                                                Strategy s) {
  std::vector<trace::RecordEntry> all;
  auto drain = [&all](const std::vector<std::uint8_t>& stream) {
    trace::MemorySource src(stream);
    trace::RecordReader reader(src);
    for (auto e = reader.next(); e.has_value(); e = reader.next()) {
      all.push_back(*e);
    }
  };
  if (s == Strategy::kST) {
    drain(b.shared_stream);
  } else {
    for (const auto& stream : b.thread_streams) drain(stream);
  }
  return all;
}

const char* sink_name(bool to_file) { return to_file ? "dir" : "memory"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::uint64_t iters = 200'000;
  std::uint32_t threads = 8;
  std::string dir =
      (std::filesystem::temp_directory_path() / "reomp_bench_record").string();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      iters = 2'000;
      threads = 4;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--iters N] "
                   "[--threads N] [--dir PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  const int reps = smoke ? 1 : 3;
  bool ok = true;

  // ---- validation: no configuration may lose entries; for a fixed
  // single-thread schedule every data path must produce identical bytes
  // within a (format, codec), and every container variant must decode to
  // the same entry sequence. The delta+lz ratio is also asserted here:
  // compression is a pure function of the trace bytes, so the >= 3x
  // target on the DC/DE traces is deterministic, not timing-dependent.
  for (const Strategy s : kStrategies) {
    std::vector<std::vector<trace::RecordEntry>> per_variant;
    for (const FormatCodec fc : kFormatCodecs) {
      std::vector<RecordBundle> bundles;
      for (const TraceWriter w : kWriters) {
        Config cfg{s, w, fc.format, /*to_file=*/false};
        cfg.compress = fc.compress;
        std::uint64_t events = 0;
        RecordBundle b;
        run_once(cfg, 1, smoke ? 500 : 5'000, dir, &events, &b);
        const auto decoded = decoded_entries(b, s);
        if (decoded.size() != events) {
          std::fprintf(stderr,
                       "FAIL: %s/%s/%s/%s lost entries (%llu of %llu)\n",
                       to_string(s).data(), to_string(w).data(),
                       to_string(fc.format).data(),
                       to_string(fc.compress).data(),
                       static_cast<unsigned long long>(decoded.size()),
                       static_cast<unsigned long long>(events));
          ok = false;
        }
        bundles.push_back(std::move(b));
      }
      for (std::size_t i = 1; i < bundles.size(); ++i) {
        if (bundles[i].shared_stream != bundles[0].shared_stream ||
            bundles[i].thread_streams != bundles[0].thread_streams) {
          std::fprintf(
              stderr,
              "FAIL: %s/%s/%s single-thread streams differ across writers\n",
              to_string(s).data(), to_string(fc.format).data(),
              to_string(fc.compress).data());
          ok = false;
        }
      }
      if (fc.compress == trace::TraceCompress::kDeltaLz &&
          (s == Strategy::kDC || s == Strategy::kDE)) {
        std::uint64_t wire = 0, raw = 0;
        for (const auto& [name, st] : bundles[0].manifest.streams) {
          (void)name;
          wire += st.bytes;
          raw += st.raw_bytes;
        }
        const double ratio =
            wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire)
                     : 0.0;
        if (ratio < 3.0) {
          std::fprintf(stderr,
                       "FAIL: %s delta+lz compresses only %.2fx (>= 3x "
                       "required)\n",
                       to_string(s).data(), ratio);
          ok = false;
        }
      }
      per_variant.push_back(decoded_entries(bundles[0], s));
    }
    for (std::size_t i = 1; i < per_variant.size(); ++i) {
      if (per_variant[i] != per_variant[0]) {
        std::fprintf(stderr,
                     "FAIL: %s decoded entries differ between %s/%s and "
                     "%s/%s\n",
                     to_string(s).data(),
                     to_string(kFormatCodecs[0].format).data(),
                     to_string(kFormatCodecs[0].compress).data(),
                     to_string(kFormatCodecs[i].format).data(),
                     to_string(kFormatCodecs[i].compress).data());
        ok = false;
      }
    }
  }

  // ---- throughput sweep ----
  std::vector<Result> results;
  std::printf("%-4s %-9s %-4s %-8s %-7s %8s %14s %9s %9s %6s\n", "strat",
              "writer", "fmt", "codec", "sink", "threads", "events/sec",
              "disk B/ev", "raw B/ev", "ratio");
  for (const bool to_file : {false, true}) {
    for (const Strategy s : kStrategies) {
      for (const FormatCodec fc : kFormatCodecs) {
        double base = 0;
        for (const TraceWriter w : kWriters) {
          Config cfg{s, w, fc.format, to_file};
          cfg.compress = fc.compress;
          double best = 0;
          std::uint64_t events = 0;
          std::uint64_t bytes = 0;
          std::uint64_t raw = 0;
          for (int r = 0; r < reps; ++r) {
            const double eps = run_once(cfg, threads, iters, dir, &events,
                                        nullptr, &bytes, &raw);
            if (eps > best) best = eps;
          }
          const double bpe =
              events > 0 ? static_cast<double>(bytes) / events : 0.0;
          // The v1 container predates chunk accounting: its manifest
          // carries no raw_bytes, and the stream IS the raw encoding.
          const double rbpe =
              fc.format == trace::ContainerFormat::kV1
                  ? bpe
                  : (events > 0 ? static_cast<double>(raw) / events : 0.0);
          Result res{cfg, threads, best, events, bpe, rbpe};
          std::printf("%-4s %-9s %-4s %-8s %-7s %8u %14.0f %9.2f %9.2f %5.2fx",
                      to_string(s).data(), to_string(w).data(),
                      to_string(fc.format).data(),
                      to_string(fc.compress).data(), sink_name(to_file),
                      threads, best, bpe, rbpe, ratio_of(res));
          results.push_back(res);
          if (w == TraceWriter::kOff) {
            base = best;
            std::printf("\n");
          } else {
            std::printf("  (%.2fx vs off)\n",
                        best / (base > 0 ? base : 1e-9));
          }
        }
      }
    }
  }

  // ---- flight recorder: bounded-ring recording (v2 + deferred writer,
  // dir sink). events/sec includes every window cut (quiesce, drain, seal,
  // snapshot, manifest commit, reap); bytes/ev is the RETAINED ring
  // footprint — the whole point of the mode is that it stays bounded no
  // matter how long the run.
  const auto window_events = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(4096, iters * threads * 2 / 16));
  constexpr std::uint32_t kRetainWindows = 4;
  std::printf("\nwindowed flight recorder (window=%u events, retain=%u):\n",
              window_events, kRetainWindows);
  for (const Strategy s : kStrategies) {
    // The ring bound composes with the codec: a compressed ring retains
    // the same windows in fewer disk bytes, so both rows ride along.
    for (const trace::TraceCompress c :
         {trace::TraceCompress::kOff, trace::TraceCompress::kDeltaLz}) {
      Config cfg{s,
                 TraceWriter::kDeferred,
                 trace::ContainerFormat::kV2,
                 /*to_file=*/true,
                 window_events,
                 kRetainWindows};
      cfg.compress = c;
      double best = 0;
      std::uint64_t events = 0;
      std::uint64_t bytes = 0;
      std::uint64_t raw = 0;
      for (int r = 0; r < reps; ++r) {
        const double eps =
            run_once(cfg, threads, iters, dir, &events, nullptr, &bytes, &raw);
        if (eps > best) best = eps;
      }
      std::uint64_t retained = 0;
      if (const auto m = trace::Manifest::load(trace::manifest_path(dir))) {
        retained = m->window_open - m->window_first + 1;
      }
      const double bpe =
          events > 0 ? static_cast<double>(bytes) / events : 0.0;
      const double rbpe =
          events > 0 ? static_cast<double>(raw) / events : 0.0;
      Result res{cfg, threads, best, events, bpe, rbpe, retained};
      results.push_back(res);
      std::printf("%-4s %-9s %-4s %-8s %-7s %8u %14.0f %9.2f %9.2f %5.2fx  "
                  "(%llu windows on disk)\n",
                  to_string(s).data(), "deferred", "v2", to_string(c).data(),
                  "dir", threads, best, bpe, rbpe, ratio_of(res),
                  static_cast<unsigned long long>(retained));
    }
  }
  std::filesystem::remove_all(dir);

  // ---- v2 framing cost vs the raw v1 container (target: <= 5% on the
  // deferred/async data paths; printed, not asserted — timing is
  // host-dependent).
  std::printf("\nchunked (v2) overhead vs raw (v1), per codec:\n");
  for (const Result& r : results) {
    if (r.cfg.format != trace::ContainerFormat::kV2) continue;
    // Windowed rows pay cut/retention machinery, not framing — comparing
    // them against a plain v1 row would misattribute that cost.
    if (r.cfg.window_events != 0) continue;
    for (const Result& v1 : results) {
      if (v1.cfg.format == trace::ContainerFormat::kV1 &&
          v1.cfg.strategy == r.cfg.strategy &&
          v1.cfg.writer == r.cfg.writer && v1.cfg.to_file == r.cfg.to_file) {
        const double overhead =
            v1.events_per_sec > 0
                ? (v1.events_per_sec - r.events_per_sec) / v1.events_per_sec
                : 0.0;
        std::printf("  %-4s %-9s %-8s %-7s %+6.1f%%\n",
                    to_string(r.cfg.strategy).data(),
                    to_string(r.cfg.writer).data(),
                    to_string(r.cfg.compress).data(),
                    sink_name(r.cfg.to_file), overhead * 100.0);
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::trunc);
    f << "{\n  \"benchmark\": \"record_overhead\",\n  \"workload\": "
         "\"data_race_mix\",\n  \"iters\": "
      << iters << ",\n  \"threads\": " << threads << ",\n  \"best_of\": "
      << reps << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      f << "    {\"strategy\": \"" << to_string(r.cfg.strategy)
        << "\", \"writer\": \"" << to_string(r.cfg.writer)
        << "\", \"format\": \"" << to_string(r.cfg.format)
        << "\", \"compress\": \"" << to_string(r.cfg.compress)
        << "\", \"sink\": \"" << sink_name(r.cfg.to_file)
        << "\", \"threads\": " << r.threads << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(r.events_per_sec)
        << ", \"bytes_per_event\": "
        << static_cast<std::uint64_t>(r.bytes_per_event * 100) / 100.0
        << ", \"raw_bytes_per_event\": "
        << static_cast<std::uint64_t>(r.raw_bytes_per_event * 100) / 100.0
        << ", \"ratio\": "
        << static_cast<std::uint64_t>(ratio_of(r) * 100) / 100.0;
      if (r.cfg.window_events != 0) {
        f << ", \"window_events\": " << r.cfg.window_events
          << ", \"retain_windows\": " << r.cfg.retain
          << ", \"windows_retained\": " << r.windows_retained;
      }
      f << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
