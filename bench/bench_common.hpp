// Shared support for the per-figure / per-table benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation
// (§VI): it sweeps thread counts over the seven configurations — without
// ReOMP, and {ST, DC, DE} × {record, replay} — times each, and prints the
// figure's series via google-benchmark plus a paper-style summary table.
//
// Record bundles are cached per (app, strategy, threads, scale) so replay
// benchmarks replay a single well-defined recording repeatedly, mirroring
// the paper's record-once / replay-many workflow (§IV-D: "once we record
// an application run, we replay the run multiple times").
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/apps/app_common.hpp"
#include "src/apps/registry.hpp"
#include "src/core/types.hpp"

namespace reomp::benchx {

/// Thread counts to sweep: powers of two up to the machine, echoing the
/// paper's 2..112 sweep scaled to this host.
std::vector<std::int64_t> thread_sweep();

/// Largest value in thread_sweep() (the "112 threads" column of Tables
/// IX/X).
std::int64_t max_threads();

/// The seven per-figure configurations.
enum class Config : int {
  kWithout = 0,
  kStRecord, kStReplay,
  kDcRecord, kDcReplay,
  kDeRecord, kDeReplay,
};

const char* config_name(Config c);

/// Run `app` once under `config` and return wall seconds. Replay configs
/// replay the cached recording for (app, strategy, threads, scale).
double run_once(const apps::AppInfo& app, Config config,
                std::uint32_t threads, double scale);

/// Record-run epoch statistics for Fig. 20 style reporting.
const core::EpochHistogram& cached_histogram(const apps::AppInfo& app,
                                             std::uint32_t threads,
                                             double scale);

/// Register the seven benchmark series for one figure. Each series is a
/// google-benchmark family swept over thread_sweep().
void register_figure(const std::string& figure, const apps::AppInfo& app,
                     double scale);

/// Print a paper-style table of the seven configurations (rows = thread
/// counts, columns = configs) measured directly with `reps` repetitions
/// (median). Used by the table binaries and by each figure binary's
/// summary footer.
void print_summary_table(const std::string& title, const apps::AppInfo& app,
                         double scale, int reps = 1);

/// Median-of-reps measurement of one cell.
double measure(const apps::AppInfo& app, Config config, std::uint32_t threads,
               double scale, int reps);

/// Standard main body: benchmark init + run + optional summary callback.
int bench_main(int argc, char** argv, const std::function<void()>& summary);

}  // namespace reomp::benchx
