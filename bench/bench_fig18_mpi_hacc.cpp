// Figure 18: OpenMP+MPI HACC under ReMPI+ReOMP (DE), sweeping rank/thread
// combinations. Expected shape: record and replay track the uninstrumented
// run with a small, scale-independent overhead (per-thread and per-rank
// record streams — no shared cursor anywhere).
#include "bench/bench_hybrid_common.hpp"

int main() {
  reomp::benchx::run_hybrid_figure("Figure 18: OpenMP+MPI HACC",
                                   reomp::apps::run_hybrid_hacc,
                                   /*scale=*/1.0);
  return 0;
}
