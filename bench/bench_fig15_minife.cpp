// Figure 15: execution time of the miniFE proxy across thread counts.
// Expected shape: DC/DE replay beats ST replay; DE gains a moderate edge
// over DC from the assembly-progress load runs (paper: 27.5% parallel
// epochs, 3.58x vs 2.87x replay speedup at 112 threads).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::app_by_name("miniFE");
  constexpr double kScale = 1.0;
  benchx::register_figure("fig15_minife", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 15: OpenMP miniFE", app, kScale);
  });
}
