// Replay-path throughput microbenchmark: gate events/sec for every
// strategy × replay data path, on the synthetic data-race mix (racy load +
// racy store per iteration through a single shared gate — the same
// workload bench_record_overhead measures on the record side).
//
// What it quantifies:
//   streaming — the seed replay design (ablation baseline / memory-cap
//               fallback): every replay_gate_in pays a virtual ByteSource
//               read plus two varint decodes inside the turn-wait loop;
//               ST additionally serializes through the cursor lock and a
//               shared RecordReader.
//   prefetch  — the pre-decoded fast path: streams bulk-decoded at engine
//               open into flat arrays; replay_gate_in is a bounds-checked
//               index plus the clock wait, and ST waits on one global
//               sequence counter (no cursor lock, no shared reader).
// each from an in-memory bundle (ordering cost only) and from a record
// directory, at 1 thread (pure replay-machinery cost, no cross-thread
// handoffs) and at --threads (the contended handoff regime).
//
// Two timings per run: `setup` (engine construction — where the prefetch
// path pays its one-time bulk decode) and the headline `events/sec` over
// the drive phase through finalize — the steady-state cost imposed on the
// replayed application, which is what "replay overhead" means for a user
// sitting through a reproduction. JSON carries both, plus the events/sec
// over setup+drive for end-to-end comparisons.
//
// Standalone binary (no google-benchmark) so the tier-1 smoke run is fast
// and deterministic:
//   bench_replay_overhead [--smoke] [--json PATH] [--iters N] [--threads N]
//                         [--dir PATH] [--wait POLICY[,POLICY...]|all]
//
// The wait-policy dimension (default "spin,auto") replays every
// configuration under each listed policy, so the JSON shows the adaptive
// default's cost against the paper's bare spin — the acceptance gate is
// auto within 5% of spin on the uncontended @1thr drive rate, while on an
// oversubscribed host auto's parking is the difference between finishing
// and livelocking (ROADMAP's 1-core TSAN hang).
//
// Every cell also runs with the replay stall supervisor on (the default
// 30 s deadline) and off (timeout 0), quantifying the monitor thread +
// wait-site telemetry tax — the acceptance gate is supervisor-on within
// 2% of supervisor-off on the contended drive rate.
//
// A final section replays compressed containers (REOMP_TRACE_COMPRESS
// lz / delta+lz at record time; replay auto-probes the v3 revision):
// per-chunk inflation rides inside the same read paths, so the gate is
// prefetch setup+drive (events/sec including engine construction) within
// 10% of the raw v2 container.
//
// --smoke shrinks iteration counts and exits nonzero if any configuration
// fails to replay to completion, reports a total_events different from the
// record run, or lands on the wrong data path (prefetch admission);
// speedups are printed, not asserted (timing is host-dependent).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/bundle.hpp"
#include "src/core/engine.hpp"

namespace {

using namespace reomp;
using core::AccessKind;
using core::Engine;
using core::GateId;
using core::Mode;
using core::Options;
using core::RecordBundle;
using core::Strategy;
using core::ThreadCtx;
using core::ThreadId;

constexpr Strategy kStrategies[] = {Strategy::kST, Strategy::kDC,
                                    Strategy::kDE};

struct Config {
  Strategy strategy;
  bool prefetch;
  bool from_file;
  std::uint32_t threads;
  WaitPolicy wait;
  // Replay stall supervisor on (default timeout) vs off: quantifies the
  // monitor thread's tax on the replay hot path — the wait-site telemetry
  // the supervised run samples is published by the waiters either way.
  bool supervise = true;
  // Chunk codec the RECORD run used; replay auto-probes the container, so
  // this only selects what is on disk (off = bit-exact v2 anchor).
  trace::TraceCompress compress = trace::TraceCompress::kOff;
};

struct Timing {
  double drive_eps = 0;  // events/sec over drive+finalize (steady state)
  double total_eps = 0;  // events/sec including engine construction
  double setup_secs = 0;
};

struct Result {
  Config cfg;
  Timing best;  // per-field best over reps
  std::uint64_t events;
};

/// Launch `threads` workers running `body(tid)`, releasing them together.
template <typename Body>
void run_pool(std::uint32_t threads, Body&& body) {
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  auto wrapped = [&](ThreadId tid) {
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    body(tid);
  };
  std::vector<std::thread> pool;
  for (ThreadId tid = 1; tid < threads; ++tid) {
    // Census registration lets the kAuto wait policy see the bench's own
    // oversubscription, exactly like the romp worker pool does.
    pool.emplace_back([&wrapped, tid] {
      ThreadCensus::Scope census;
      wrapped(tid);
    });
  }
  while (ready.load() != threads - 1) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  wrapped(0);
  for (auto& t : pool) t.join();
}

/// One record run of the data-race mix (defaults: deferred writer).
RecordBundle record_mix(
    Strategy strategy, std::uint32_t threads, std::uint64_t iters,
    const std::string& dir, bool to_file, std::uint64_t* events_out,
    trace::TraceCompress compress = trace::TraceCompress::kOff) {
  Options opt;
  opt.mode = Mode::kRecord;
  opt.strategy = strategy;
  opt.num_threads = threads;
  opt.trace_compress = compress;
  if (to_file) opt.dir = dir;
  Engine eng(opt);
  const GateId g = eng.register_gate("sum");
  std::atomic<std::uint64_t> sum{0};
  run_pool(threads, [&](ThreadId tid) {
    ThreadCtx& ctx = eng.bind_thread(tid);
    for (std::uint64_t i = 0; i < iters; ++i) {
      const std::uint64_t v = eng.sma_load(ctx, g, sum);
      eng.sma_store(ctx, g, sum, v + 1);
    }
  });
  eng.finalize();
  *events_out = eng.total_events();
  return to_file ? RecordBundle{} : eng.take_bundle();
}

/// One replay run against the given record. `ok` accumulates the
/// correctness verdict for --smoke.
Timing replay_once(const Config& cfg, std::uint64_t iters,
                   const std::string& dir, const RecordBundle& bundle,
                   std::uint64_t recorded_events, bool* ok) {
  Options opt;
  opt.mode = Mode::kReplay;
  opt.strategy = cfg.strategy;
  opt.num_threads = cfg.threads;
  opt.replay_prefetch = cfg.prefetch;
  opt.wait_policy = cfg.wait;
  opt.replay_stall_timeout_ms = cfg.supervise ? 30'000 : 0;
  if (cfg.from_file) {
    opt.dir = dir;
  } else {
    opt.bundle = &bundle;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Engine eng(opt);
  const GateId g = eng.register_gate("sum");
  const auto t_ready = std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> sum{0};
  run_pool(cfg.threads, [&](ThreadId tid) {
    ThreadCtx& ctx = eng.bind_thread(tid);
    for (std::uint64_t i = 0; i < iters; ++i) {
      const std::uint64_t v = eng.sma_load(ctx, g, sum);
      eng.sma_store(ctx, g, sum, v + 1);
    }
  });
  eng.finalize();
  const auto t1 = std::chrono::steady_clock::now();

  if (eng.replay_prefetched() != cfg.prefetch) {
    std::fprintf(stderr, "FAIL: %s expected prefetch=%d, engine ran %d\n",
                 to_string(cfg.strategy).data(), cfg.prefetch,
                 eng.replay_prefetched());
    *ok = false;
  }
  if (eng.total_events() != recorded_events) {
    std::fprintf(stderr,
                 "FAIL: %s replayed %llu events, record holds %llu\n",
                 to_string(cfg.strategy).data(),
                 static_cast<unsigned long long>(eng.total_events()),
                 static_cast<unsigned long long>(recorded_events));
    *ok = false;
  }
  const double drive = std::chrono::duration<double>(t1 - t_ready).count();
  const double total = std::chrono::duration<double>(t1 - t0).count();
  Timing timing;
  timing.setup_secs = std::chrono::duration<double>(t_ready - t0).count();
  timing.drive_eps =
      static_cast<double>(eng.total_events()) / (drive > 0 ? drive : 1e-9);
  timing.total_eps =
      static_cast<double>(eng.total_events()) / (total > 0 ? total : 1e-9);
  return timing;
}

const char* sink_name(bool from_file) { return from_file ? "dir" : "memory"; }
const char* path_name(bool prefetch) {
  return prefetch ? "prefetch" : "streaming";
}

/// Parse the --wait argument: a comma-separated policy list, or "all".
std::vector<WaitPolicy> wait_list_from_arg(const std::string& arg) {
  if (arg == "all") {
    return {WaitPolicy::kSpin, WaitPolicy::kSpinYield, WaitPolicy::kYield,
            WaitPolicy::kBlock, WaitPolicy::kAuto};
  }
  std::vector<WaitPolicy> out;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(pos, comma - pos);  // npos clamps
    const auto p = wait_policy_from_string(tok);
    if (!p) {
      std::fprintf(stderr, "unknown --wait policy '%s'\n", tok.c_str());
      std::exit(2);
    }
    out.push_back(*p);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::uint64_t iters = 100'000;
  std::uint32_t max_threads = 8;
  std::string wait_arg = "spin,auto";
  std::string dir =
      (std::filesystem::temp_directory_path() / "reomp_bench_replay").string();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      iters = 2'000;
      max_threads = 4;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--wait") == 0 && i + 1 < argc) {
      wait_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--iters N] "
                   "[--threads N] [--dir PATH] "
                   "[--wait POLICY[,POLICY...]|all]\n",
                   argv[0]);
      return 2;
    }
  }
  const int reps = smoke ? 1 : 3;
  bool ok = true;
  const std::vector<WaitPolicy> waits = wait_list_from_arg(wait_arg);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<Result> results;
  std::printf("%-4s %-10s %-7s %8s %6s %4s %14s %10s\n", "strat", "path",
              "sink", "threads", "wait", "sup", "events/sec", "setup-ms");
  std::vector<std::uint32_t> thread_counts{1};
  if (max_threads > 1) thread_counts.push_back(max_threads);
  for (const std::uint32_t threads : thread_counts) {
    for (const bool from_file : {false, true}) {
      for (const Strategy s : kStrategies) {
        // One record run feeds every wait policy and both replay paths.
        std::uint64_t recorded_events = 0;
        const RecordBundle bundle =
            record_mix(s, threads, iters, dir, from_file, &recorded_events);
        for (const WaitPolicy wait : waits) {
          if (wait == WaitPolicy::kSpin && threads > hw) {
            // A pure-spin replay with more threads than cores is the
            // documented livelock regime (each handoff burns scheduler
            // quanta); running it would stall the bench for hours, so the
            // row is skipped — loudly, never silently.
            std::printf("%-4s %-10s %-7s %8u %6s  skipped: oversubscribed "
                        "pure spin would livelock\n",
                        to_string(s).data(), "-", sink_name(from_file),
                        threads, to_string(wait).data());
            continue;
          }
          for (const bool supervise : {true, false}) {
            double base = 0;
            for (const bool prefetch : {false, true}) {
              const Config cfg{s, prefetch, from_file, threads, wait,
                               supervise};
              Timing best;
              best.setup_secs = 1e9;
              for (int r = 0; r < reps; ++r) {
                const Timing t =
                    replay_once(cfg, iters, dir, bundle, recorded_events, &ok);
                best.drive_eps = std::max(best.drive_eps, t.drive_eps);
                best.total_eps = std::max(best.total_eps, t.total_eps);
                best.setup_secs = std::min(best.setup_secs, t.setup_secs);
              }
              results.push_back({cfg, best, recorded_events});
              std::printf("%-4s %-10s %-7s %8u %6s %4s %14.0f %10.2f",
                          to_string(s).data(), path_name(prefetch),
                          sink_name(from_file), threads,
                          to_string(wait).data(), supervise ? "on" : "off",
                          best.drive_eps, best.setup_secs * 1e3);
              if (!prefetch) {
                base = best.drive_eps;
                std::printf("\n");
              } else {
                std::printf("  (%.2fx vs streaming)\n",
                            best.drive_eps / (base > 0 ? base : 1e-9));
              }
            }
          }
        }
      }
    }
  }

  // ---- compressed-container decode: one record run per chunk codec feeds
  // both replay paths (wait=auto, supervisor on — the defaults). The `off`
  // rows re-measure the raw v2 container inside this section so the
  // comparison is best-of-reps against best-of-reps. The acceptance target
  // is prefetch setup+drive ("e2e ev/s": engine construction, where the
  // bulk decode inflates every chunk, plus the drive phase) within 10% of
  // raw v2 — printed, not asserted (timing is host-dependent).
  constexpr trace::TraceCompress kCodecs[] = {trace::TraceCompress::kOff,
                                              trace::TraceCompress::kLz,
                                              trace::TraceCompress::kDeltaLz};
  std::printf("\ncompressed-container decode (wait=auto, supervisor on):\n");
  std::printf("%-4s %-10s %-8s %-7s %8s %14s %14s %10s\n", "strat", "path",
              "codec", "sink", "threads", "drive ev/s", "e2e ev/s",
              "setup-ms");
  for (const std::uint32_t threads : thread_counts) {
    for (const bool from_file : {false, true}) {
      for (const Strategy s : kStrategies) {
        double base_e2e[2] = {0, 0};  // raw-v2 e2e rate per replay path
        for (const trace::TraceCompress codec : kCodecs) {
          std::uint64_t recorded_events = 0;
          const RecordBundle bundle = record_mix(
              s, threads, iters, dir, from_file, &recorded_events, codec);
          for (const bool prefetch : {false, true}) {
            Config cfg{s,          prefetch,          from_file, threads,
                       WaitPolicy::kAuto, /*supervise=*/true};
            cfg.compress = codec;
            Timing best;
            best.setup_secs = 1e9;
            for (int r = 0; r < reps; ++r) {
              const Timing t =
                  replay_once(cfg, iters, dir, bundle, recorded_events, &ok);
              best.drive_eps = std::max(best.drive_eps, t.drive_eps);
              best.total_eps = std::max(best.total_eps, t.total_eps);
              best.setup_secs = std::min(best.setup_secs, t.setup_secs);
            }
            results.push_back({cfg, best, recorded_events});
            std::printf("%-4s %-10s %-8s %-7s %8u %14.0f %14.0f %10.2f",
                        to_string(s).data(), path_name(prefetch),
                        to_string(codec).data(), sink_name(from_file),
                        threads, best.drive_eps, best.total_eps,
                        best.setup_secs * 1e3);
            if (codec == trace::TraceCompress::kOff) {
              base_e2e[prefetch ? 1 : 0] = best.total_eps;
              std::printf("\n");
            } else {
              const double base = base_e2e[prefetch ? 1 : 0];
              const double overhead =
                  base > 0 ? (base - best.total_eps) / base : 0.0;
              std::printf("  (%+.1f%% e2e vs off)\n", overhead * 100.0);
            }
          }
        }
      }
    }
  }
  std::filesystem::remove_all(dir);

  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::trunc);
    f << "{\n  \"benchmark\": \"replay_overhead\",\n  \"workload\": "
         "\"data_race_mix\",\n  \"iters\": "
      << iters << ",\n  \"max_threads\": " << max_threads
      << ",\n  \"best_of\": " << reps << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      f << "    {\"strategy\": \"" << to_string(r.cfg.strategy)
        << "\", \"path\": \"" << path_name(r.cfg.prefetch)
        << "\", \"sink\": \"" << sink_name(r.cfg.from_file)
        << "\", \"threads\": " << r.cfg.threads
        << ", \"wait\": \"" << to_string(r.cfg.wait)
        << "\", \"supervisor\": " << (r.cfg.supervise ? "true" : "false")
        << ", \"compress\": \"" << to_string(r.cfg.compress)
        << "\", \"events_per_sec\": "
        << static_cast<std::uint64_t>(r.best.drive_eps)
        << ", \"events_per_sec_with_setup\": "
        << static_cast<std::uint64_t>(r.best.total_eps)
        << ", \"setup_ms\": " << r.best.setup_secs * 1e3 << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
