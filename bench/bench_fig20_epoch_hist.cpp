// Figure 20: number of occurrences of each epoch size, per application,
// from DE record runs. Also reports the fraction of epochs with size > 1
// (paper §VI-B: AMG 10.6%, miniFE 27.5%, HACC 85%, HPCCG 57%,
// QuickSilver 4%) — the predictor of DE's replay advantage.
#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  benchmark::Initialize(&argc, argv);

  const auto threads = static_cast<std::uint32_t>(benchx::max_threads());
  constexpr double kScale = 1.0;

  std::printf("=== Figure 20: epoch-size histograms (DE record, %u threads) "
              "===\n", threads);
  for (const auto& app : apps::all_apps()) {
    const auto& hist = benchx::cached_histogram(app, threads, kScale);
    std::printf("\n%s  (epochs=%llu, accesses=%llu, parallel fraction=%.1f%%)\n",
                app.name.c_str(),
                static_cast<unsigned long long>(hist.total_epochs()),
                static_cast<unsigned long long>(hist.total_accesses()),
                100.0 * hist.parallel_epoch_fraction());
    std::printf("%12s %16s\n", "epoch size", "# occurrences");
    for (const auto& [size, count] : hist.counts()) {
      std::printf("%12llu %16llu\n", static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(count));
    }
    std::fflush(stdout);
  }
  benchmark::Shutdown();
  return 0;
}
