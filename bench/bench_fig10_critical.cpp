// Figure 10: execution time of omp_critical across thread counts.
//
// Expected shape (paper §VI-A2): DC/DE record beat ST record (parallel
// per-thread files, I/O overlap); ST replay is much slower than DC/DE
// replay (two inter-thread communications per region and a single global
// record cursor vs one next_clock increment). DC and DE coincide: critical
// sections are kOther, so DE degenerates to DC here.
#include "bench/bench_common.hpp"
#include "src/apps/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::synthetic_benchmarks()[1];
  constexpr double kScale = 1.0;
  benchx::register_figure("fig10_omp_critical", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 10: omp_critical", app, kScale);
  });
}
