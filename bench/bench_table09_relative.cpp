// Table IX: relative execution times of ST/DC/DE record and replay vs the
// uninstrumented run, for the four synthetic benchmarks at max threads.
//
// Expected shape: omp_reduction ~1x everywhere; omp_critical small factors;
// omp_atomic and data_race large factors with ST >> DC >= DE, and the
// replay gap (ST replay vs DC/DE replay) the widest in data_race.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/apps/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  benchmark::Initialize(&argc, argv);

  const auto threads = static_cast<std::uint32_t>(benchx::max_threads());
  constexpr double kScale = 1.0;
  constexpr int kReps = 3;

  std::printf("=== Table IX: relative execution times vs w/o ReOMP at %u "
              "threads ===\n", threads);
  std::printf("%-15s %9s %9s %9s %9s %9s %9s\n", "benchmark", "ST.rec",
              "ST.rep", "DC.rec", "DC.rep", "DE.rec", "DE.rep");

  for (const auto& app : apps::synthetic_benchmarks()) {
    const double base =
        benchx::measure(app, benchx::Config::kWithout, threads, kScale, kReps);
    auto rel = [&](benchx::Config c) {
      return benchx::measure(app, c, threads, kScale, kReps) / base;
    };
    std::printf("%-15s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                app.name.c_str(), rel(benchx::Config::kStRecord),
                rel(benchx::Config::kStReplay), rel(benchx::Config::kDcRecord),
                rel(benchx::Config::kDcReplay), rel(benchx::Config::kDeRecord),
                rel(benchx::Config::kDeReplay));
    std::fflush(stdout);
  }
  benchmark::Shutdown();
  return 0;
}
