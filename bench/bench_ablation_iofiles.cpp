// Ablation: record-file layout (paper §IV-C1). ST's single shared file
// serializes all record I/O; DC/DE per-thread files parallelize it. To
// isolate the I/O component from the ordering component, each strategy is
// also run with in-memory sinks (no filesystem at all).
#include <cstdio>

#include "src/apps/synthetic.hpp"
#include "src/common/timer.hpp"

int main() {
  using namespace reomp;
  const std::uint32_t threads = 8;
  constexpr double kScale = 1.0;
  constexpr int kReps = 3;

  std::printf("=== Ablation: record-file layout (data_race record, %u "
              "threads) ===\n", threads);
  std::printf("%10s %14s %14s %10s\n", "strategy", "tmpfs_files_s",
              "in_memory_s", "io_share");

  for (core::Strategy strategy :
       {core::Strategy::kST, core::Strategy::kDC, core::Strategy::kDE}) {
    double file_s = 1e9, mem_s = 1e9;
    for (int rep = 0; rep < kReps; ++rep) {
      apps::RunConfig cfg;
      cfg.threads = threads;
      cfg.scale = kScale;
      cfg.engine.mode = core::Mode::kRecord;
      cfg.engine.strategy = strategy;

      cfg.engine.dir = "/tmp/reomp_ablation_files";
      WallTimer t_file;
      (void)apps::run_synthetic_datarace(cfg);
      file_s = std::min(file_s, t_file.seconds());

      cfg.engine.dir.clear();
      WallTimer t_mem;
      (void)apps::run_synthetic_datarace(cfg);
      mem_s = std::min(mem_s, t_mem.seconds());
    }
    std::printf("%10s %14.4f %14.4f %9.1f%%\n",
                std::string(core::to_string(strategy)).c_str(), file_s, mem_s,
                100.0 * (file_s - mem_s) / file_s);
    std::fflush(stdout);
  }
  return 0;
}
