// Pre-PR detector, compiled into bench_detector_sync as its git baseline.
//
// This is the production Detector exactly as it stood before the
// vector-clock engine overhaul (arena clocks / epoch-cached sync objects /
// O(T) barriers) — i.e. the PR 1-3 tree: lock-free same-epoch access fast
// path + flat sharded shadow table, but heap-vector VectorClocks with a
// grow() branch, a striped unordered_map lock table, a global threads
// mutex, and the all-join barrier. Keeping it compiled in (rather than
// re-measuring from a git checkout) makes the speedup in
// BENCH_detector.json a single-binary apples-to-apples number.
//
// Deliberately verbatim where possible. Do not optimize this file; it is a
// measurement anchor, like ReferenceDetector one level further down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/cacheline.hpp"
#include "src/common/flat_shadow_table.hpp"
#include "src/common/spinlock.hpp"
#include "src/race/site.hpp"
#include "src/race/vclock.hpp"

namespace reomp::race::prepr {

inline constexpr std::uint32_t kNoReadVc = ~std::uint32_t{0};

struct VarState {
  std::atomic<std::uint64_t> write_epoch{0};
  std::atomic<std::uint64_t> read_epoch{0};
  std::atomic<SiteId> write_site{kInvalidSite};
  std::atomic<SiteId> read_site{kInvalidSite};
  std::uint32_t read_vc = kNoReadVc;

  [[nodiscard]] bool read_shared() const { return read_vc != kNoReadVc; }

  VarState() = default;
  VarState& operator=(const VarState& o) {
    write_epoch.store(o.write_epoch.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    read_epoch.store(o.read_epoch.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    write_site.store(o.write_site.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    read_site.store(o.read_site.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    read_vc = o.read_vc;
    return *this;
  }
};

class ShadowMemory {
  struct Shard;

 public:
  static constexpr std::uint32_t kDefaultShards = 64;

  explicit ShadowMemory(std::uint32_t shard_count = kDefaultShards) {
    std::uint32_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_ = std::make_unique<Shard[]>(n);
    mask_ = n - 1;
  }

  [[nodiscard]] const VarState* find_fast(std::uintptr_t addr) const {
    return shard(addr).table.find(addr);
  }

  class VarAccess {
   public:
    VarState& state;

    std::uint32_t alloc_vc() {
      if (!shard_.vc_free.empty()) {
        const std::uint32_t idx = shard_.vc_free.back();
        shard_.vc_free.pop_back();
        shard_.vc_pool[idx] = VectorClock();
        return idx;
      }
      shard_.vc_pool.emplace_back();
      return static_cast<std::uint32_t>(shard_.vc_pool.size() - 1);
    }
    void free_vc(std::uint32_t idx) { shard_.vc_free.push_back(idx); }
    [[nodiscard]] VectorClock& vc(std::uint32_t idx) {
      return shard_.vc_pool[idx];
    }

   private:
    friend class ShadowMemory;
    VarAccess(VarState& s, Shard& sh) : state(s), shard_(sh) {}
    Shard& shard_;
  };

  template <typename Fn>
  void with(std::uintptr_t addr, Fn&& fn) {
    Shard& s = shard(addr);
    LockGuard<Spinlock> lock(s.lock);
    VarAccess access(s.table.get_or_insert(addr), s);
    fn(access);
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    Spinlock lock;
    FlatShadowTable<VarState> table;
    std::vector<VectorClock> vc_pool;
    std::vector<std::uint32_t> vc_free;
  };

  Shard& shard(std::uintptr_t addr) { return shards_[shard_index(addr)]; }
  const Shard& shard(std::uintptr_t addr) const {
    return shards_[shard_index(addr)];
  }
  std::size_t shard_index(std::uintptr_t addr) const {
    const std::uint64_t h = (addr >> 3) * 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & mask_;
  }

  std::unique_ptr<Shard[]> shards_;
  std::uint32_t mask_;
};

class Detector;

class ThreadClock {
 public:
  [[nodiscard]] std::uint64_t epoch_bits() const {
    return epoch_bits_.load(std::memory_order_relaxed);
  }

 private:
  friend class Detector;

  void refresh_epoch() {
    epoch_bits_.store(Epoch(tid_, vc_.get(tid_)).bits(),
                      std::memory_order_relaxed);
  }
  void count_fast_hit() {
    fast_hits_.store(fast_hits_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  VectorClock vc_;
  std::uint32_t tid_ = 0;
  std::atomic<std::uint64_t> epoch_bits_{0};
  std::atomic<std::uint64_t> fast_hits_{0};
};

/// The pre-PR Detector. API mirrors the production one closely enough for
/// the bench templates (tid-based on_read/on_write, same sync verbs).
class Detector {
 public:
  Detector(std::uint32_t num_threads, SiteRegistry& sites,
           std::uint32_t shadow_shards = ShadowMemory::kDefaultShards)
      : sites_(sites), num_threads_(num_threads), shadow_(shadow_shards) {
    threads_ = std::make_unique<CachePadded<ThreadClock>[]>(num_threads);
    for (std::uint32_t t = 0; t < num_threads; ++t) {
      ThreadClock& tc = threads_[t].value;
      tc.tid_ = t;
      tc.vc_ = VectorClock(num_threads);
      tc.vc_.tick(t);
      tc.refresh_epoch();
    }
    lock_stripes_ = std::make_unique<LockStripe[]>(kLockStripes);
  }

  void on_read(std::uint32_t tid, std::uintptr_t addr, SiteId site) {
    ThreadClock& tc = threads_[tid].value;
    if (const VarState* v = shadow_.find_fast(addr)) {
      if (v->read_epoch.load(std::memory_order_relaxed) == tc.epoch_bits() &&
          v->read_site.load(std::memory_order_relaxed) == site) {
        tc.count_fast_hit();
        return;
      }
    }
    read_slow(tc, addr, site);
  }

  void on_write(std::uint32_t tid, std::uintptr_t addr, SiteId site) {
    ThreadClock& tc = threads_[tid].value;
    if (const VarState* v = shadow_.find_fast(addr)) {
      if (v->write_epoch.load(std::memory_order_relaxed) == tc.epoch_bits() &&
          v->write_site.load(std::memory_order_relaxed) == site &&
          v->read_epoch.load(std::memory_order_relaxed) == 0) {
        tc.count_fast_hit();
        return;
      }
    }
    write_slow(tc, addr, site);
  }

  void on_acquire(std::uint32_t tid, std::uint64_t lock_id) {
    LockStripe& s = stripe(lock_id);
    LockGuard<Spinlock> lock(s.mu);
    threads_[tid].value.vc_.join(s.locks[lock_id]);
  }

  void on_release(std::uint32_t tid, std::uint64_t lock_id) {
    ThreadClock& tc = threads_[tid].value;
    LockStripe& s = stripe(lock_id);
    {
      LockGuard<Spinlock> lock(s.mu);
      s.locks[lock_id] = tc.vc_;
    }
    tc.vc_.tick(tid);
    tc.refresh_epoch();
  }

  void on_barrier() {
    LockGuard<Spinlock> lock(threads_mu_);
    VectorClock all(num_threads_);
    for (std::uint32_t t = 0; t < num_threads_; ++t) {
      all.join(threads_[t].value.vc_);
    }
    for (std::uint32_t t = 0; t < num_threads_; ++t) {
      ThreadClock& tc = threads_[t].value;
      tc.vc_ = all;
      tc.vc_.tick(t);
      tc.refresh_epoch();
    }
  }

  void on_fork(std::uint32_t parent, std::uint32_t child) {
    LockGuard<Spinlock> lock(threads_mu_);
    ThreadClock& p = threads_[parent].value;
    ThreadClock& c = threads_[child].value;
    c.vc_.join(p.vc_);
    c.vc_.tick(child);
    c.refresh_epoch();
    p.vc_.tick(parent);
    p.refresh_epoch();
  }

  void on_join(std::uint32_t parent, std::uint32_t child) {
    LockGuard<Spinlock> lock(threads_mu_);
    ThreadClock& p = threads_[parent].value;
    p.vc_.join(threads_[child].value.vc_);
    p.vc_.tick(parent);
    p.refresh_epoch();
  }

  [[nodiscard]] std::uint64_t races_observed() const {
    LockGuard<Spinlock> lock(report_mu_);
    return race_count_;
  }
  [[nodiscard]] std::uint64_t fast_path_hits() const {
    std::uint64_t n = 0;
    for (std::uint32_t t = 0; t < num_threads_; ++t) {
      n += threads_[t].value.fast_hits_.load(std::memory_order_relaxed);
    }
    return n;
  }
  [[nodiscard]] std::uint64_t sync_fast_hits() const { return 0; }

 private:
  static constexpr std::uint32_t kLockStripes = 64;
  struct alignas(kCacheLineSize) LockStripe {
    Spinlock mu;
    std::unordered_map<std::uint64_t, VectorClock> locks;
  };

  void record_race(SiteId a, SiteId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    const std::uint64_t key = (lo << 32) | hi;
    LockGuard<Spinlock> lock(report_mu_);
    ++race_pairs_[key];
    ++race_count_;
  }

  void read_slow(ThreadClock& tc, std::uintptr_t addr, SiteId site) {
    const VectorClock& ct = tc.vc_;
    const std::uint32_t tid = tc.tid_;
    shadow_.with(addr, [&](ShadowMemory::VarAccess& a) {
      VarState& v = a.state;
      const Epoch write =
          Epoch::from_bits(v.write_epoch.load(std::memory_order_relaxed));
      if (!ct.covers(write)) {
        record_race(v.write_site.load(std::memory_order_relaxed), site);
      }
      const std::uint64_t my_epoch = tc.epoch_bits();
      if (v.read_shared()) {
        a.vc(v.read_vc).set(tid, ct.get(tid));
        v.read_epoch.store(my_epoch, std::memory_order_relaxed);
      } else {
        const Epoch read =
            Epoch::from_bits(v.read_epoch.load(std::memory_order_relaxed));
        if (read.is_zero() || read.tid() == tid || ct.covers(read)) {
          v.read_epoch.store(my_epoch, std::memory_order_relaxed);
          v.read_site.store(site, std::memory_order_relaxed);
        } else {
          const std::uint32_t idx = a.alloc_vc();
          VectorClock& rvc = a.vc(idx);
          rvc.set(read.tid(), read.clock());
          rvc.set(tid, ct.get(tid));
          v.read_vc = idx;
          v.read_epoch.store(my_epoch, std::memory_order_relaxed);
        }
      }
    });
  }

  void write_slow(ThreadClock& tc, std::uintptr_t addr, SiteId site) {
    const VectorClock& ct = tc.vc_;
    shadow_.with(addr, [&](ShadowMemory::VarAccess& a) {
      VarState& v = a.state;
      const Epoch write =
          Epoch::from_bits(v.write_epoch.load(std::memory_order_relaxed));
      if (!ct.covers(write)) {
        record_race(v.write_site.load(std::memory_order_relaxed), site);
      }
      if (v.read_shared()) {
        if (!ct.covers(a.vc(v.read_vc))) {
          record_race(v.read_site.load(std::memory_order_relaxed), site);
        }
        a.free_vc(v.read_vc);
        v.read_vc = kNoReadVc;
      } else {
        const Epoch read =
            Epoch::from_bits(v.read_epoch.load(std::memory_order_relaxed));
        if (!read.is_zero() && !ct.covers(read)) {
          record_race(v.read_site.load(std::memory_order_relaxed), site);
        }
      }
      v.write_epoch.store(tc.epoch_bits(), std::memory_order_relaxed);
      v.write_site.store(site, std::memory_order_relaxed);
      v.read_epoch.store(0, std::memory_order_relaxed);
      v.read_site.store(kInvalidSite, std::memory_order_relaxed);
    });
  }

  LockStripe& stripe(std::uint64_t lock_id) {
    const std::uint64_t h = lock_id * 0x9e3779b97f4a7c15ULL;
    return lock_stripes_[(h >> 32) & (kLockStripes - 1)];
  }

  SiteRegistry& sites_;
  std::uint32_t num_threads_;
  std::unique_ptr<CachePadded<ThreadClock>[]> threads_;
  mutable Spinlock threads_mu_;
  std::unique_ptr<LockStripe[]> lock_stripes_;
  ShadowMemory shadow_;
  mutable Spinlock report_mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> race_pairs_;
  std::uint64_t race_count_ = 0;
};

}  // namespace reomp::race::prepr
