// Shadow-memory scaling microbenchmark: detector ops/sec vs thread count,
// new flat+fast-path implementation against the reference fully-locked one.
//
// Four access mixes:
//   read-heavy  — each thread re-reads its own variable plus a handful of
//                 shared read-mostly variables (the FastTrack common case;
//                 nearly every access is a same-epoch fast-path hit)
//   write-heavy — each thread re-writes its own variable
//   mixed       — runs of reads and runs of writes over private + shared
//                 variables, with occasional release ticks rotating epochs
//   racy        — all threads hammer a small shared set (worst case: slow
//                 path + race recording on every access)
//
// Standalone binary (no google-benchmark) so the tier-1 smoke run is fast
// and deterministic:
//   bench_shadow_scaling [--smoke] [--json PATH] [--iters N] [--max-threads N]
//
// --smoke runs tiny iteration counts and exits nonzero if the fast path
// failed to engage or either implementation misverdicts the mixes; the
// speedup itself is printed, not asserted (timing is host-dependent).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/race/detector.hpp"
#include "src/race/reference_detector.hpp"

namespace {

using reomp::race::Detector;
using reomp::race::ReferenceDetector;
using reomp::race::SiteId;
using reomp::race::SiteRegistry;

enum class Mix { kReadHeavy, kWriteHeavy, kMixed, kRacy };

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::kReadHeavy: return "read-heavy";
    case Mix::kWriteHeavy: return "write-heavy";
    case Mix::kMixed: return "mixed";
    case Mix::kRacy: return "racy";
  }
  return "?";
}

constexpr std::uintptr_t kPrivateBase = 0x100000;
constexpr std::uintptr_t kSharedBase = 0x200000;
constexpr int kSharedVars = 4;
constexpr int kRacyVars = 2;

/// One thread's workload; D is Detector or ReferenceDetector (same verbs).
template <typename D>
void run_mix(D& d, Mix mix, std::uint32_t tid, std::uint64_t iters,
             SiteId site) {
  const std::uintptr_t mine = kPrivateBase + 64 * tid;
  switch (mix) {
    case Mix::kReadHeavy:
      d.on_write(tid, mine, site);
      for (std::uint64_t i = 0; i < iters; ++i) {
        d.on_read(tid, mine, site);
        if ((i & 15) == 0) {
          d.on_read(tid, kSharedBase + 64 * (i % kSharedVars), site);
        }
      }
      break;
    case Mix::kWriteHeavy:
      for (std::uint64_t i = 0; i < iters; ++i) d.on_write(tid, mine, site);
      break;
    case Mix::kMixed:
      for (std::uint64_t i = 0; i < iters / 128; ++i) {
        d.on_write(tid, mine, site);
        for (int r = 0; r < 96; ++r) d.on_read(tid, mine, site);
        for (int w = 0; w < 31; ++w) d.on_write(tid, mine, site);
        // Rotate the epoch now and then, as real code does at sync points.
        d.on_release(tid, /*lock_id=*/1000 + tid);
      }
      break;
    case Mix::kRacy:
      for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uintptr_t addr = kSharedBase + 64 * (i % kRacyVars);
        if ((i & 3) == 0) {
          d.on_write(tid, addr, site);
        } else {
          d.on_read(tid, addr, site);
        }
      }
      break;
  }
}

struct Result {
  Mix mix;
  std::uint32_t threads;
  const char* impl;
  double ops_per_sec;
  std::uint64_t fast_hits;
  std::uint64_t races;
};

template <typename D>
Result run_one(Mix mix, std::uint32_t threads, std::uint64_t iters,
               const char* impl_name) {
  SiteRegistry sites;
  std::vector<SiteId> site_of(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    site_of[t] = sites.intern("bench:t" + std::to_string(t));
  }
  D d(threads, sites);

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (std::uint32_t t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {}
      run_mix(d, mix, t, iters, site_of[t]);
    });
  }
  while (ready.load() != threads - 1) {}
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  run_mix(d, mix, 0, iters, site_of[0]);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double total_ops = static_cast<double>(iters) * threads;
  Result r{mix, threads, impl_name, total_ops / (secs > 0 ? secs : 1e-9), 0,
           d.races_observed()};
  if constexpr (std::is_same_v<D, Detector>) {
    r.fast_hits = d.fast_path_hits();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::uint64_t iters = 2'000'000;
  std::uint32_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      iters = 20'000;
      max_threads = 4;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-threads") == 0 && i + 1 < argc) {
      max_threads = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--iters N] "
                   "[--max-threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Result> results;
  std::printf("%-12s %8s %-10s %14s %14s %10s\n", "mix", "threads", "impl",
              "ops/sec", "fast_hits", "races");
  bool ok = true;
  for (Mix mix : {Mix::kReadHeavy, Mix::kWriteHeavy, Mix::kMixed, Mix::kRacy}) {
    // The racy mix grinds the reference's global lock; trim its iterations
    // so full runs stay bounded.
    const std::uint64_t n = mix == Mix::kRacy ? iters / 4 : iters;
    for (std::uint32_t threads = 1; threads <= max_threads; threads *= 2) {
      const Result flat = run_one<Detector>(mix, threads, n, "flat");
      const Result ref = run_one<ReferenceDetector>(mix, threads, n, "locked");
      for (const Result& r : {flat, ref}) {
        std::printf("%-12s %8u %-10s %14.0f %14llu %10llu\n", mix_name(r.mix),
                    r.threads, r.impl, r.ops_per_sec,
                    static_cast<unsigned long long>(r.fast_hits),
                    static_cast<unsigned long long>(r.races));
        results.push_back(r);
      }
      std::printf("%-12s %8u %-10s %13.2fx\n", mix_name(mix), threads,
                  "speedup", flat.ops_per_sec / ref.ops_per_sec);
      // Smoke validation: fast path engaged where it must, and both
      // implementations agree on whether the mix races at all.
      if (mix != Mix::kRacy && flat.fast_hits == 0) {
        std::fprintf(stderr, "FAIL: fast path never engaged (%s, %u thr)\n",
                     mix_name(mix), threads);
        ok = false;
      }
      if ((flat.races > 0) != (ref.races > 0)) {
        std::fprintf(stderr, "FAIL: verdict mismatch (%s, %u thr)\n",
                     mix_name(mix), threads);
        ok = false;
      }
      if (mix != Mix::kRacy && threads == 1 && flat.races != 0) {
        std::fprintf(stderr, "FAIL: false positive (%s)\n", mix_name(mix));
        ok = false;
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::trunc);
    f << "{\n  \"benchmark\": \"shadow_scaling\",\n  \"iters\": " << iters
      << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      f << "    {\"mix\": \"" << mix_name(r.mix) << "\", \"threads\": "
        << r.threads << ", \"impl\": \"" << r.impl << "\", \"ops_per_sec\": "
        << static_cast<std::uint64_t>(r.ops_per_sec) << ", \"fast_hits\": "
        << r.fast_hits << ", \"races\": " << r.races << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
