// Figure 14: execution time of the QuickSilver proxy across thread counts.
// Expected shape: DC/DE beat ST in replay, but DE ~= DC — QuickSilver's
// SMA traffic is atomic-RMW tallies and critical-section census logging
// (kOther), so almost no epochs are parallel (paper: 4%).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::app_by_name("QuickSilver");
  constexpr double kScale = 1.0;
  benchx::register_figure("fig14_quicksilver", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 14: OpenMP QuickSilver", app, kScale);
  });
}
