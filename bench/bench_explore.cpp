// Explore-mode throughput microbenchmark: schedules/sec for every
// strategy × thread count, on a fixed contended workload (critical
// section + gated atomic + barrier per thread).
//
// What it quantifies: the cost of one explored schedule — Team
// construction, the fully serialized PCT token-passing run, trace
// encoding, finalize — which is the unit an exploration campaign pays per
// seed. A campaign's wall-clock is (schedules/sec)^-1 × seeds, so this
// number is the capacity planning input for sweep drivers.
//
// Standalone binary (no google-benchmark) so the tier-1 smoke run is fast
// and deterministic:
//   bench_explore [--smoke] [--json PATH] [--schedules N] [--threads N]
//
// --smoke shrinks the sweep and exits nonzero if the determinism contract
// breaks: same seed must yield byte-identical recorded streams, and a
// small seed sweep must produce at least two distinct schedules.
// Throughput is printed, not asserted (timing is host-dependent).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/core/bundle.hpp"
#include "src/romp/team.hpp"

namespace {

using namespace reomp;
using core::Mode;
using core::RecordBundle;
using core::Strategy;

constexpr Strategy kStrategies[] = {Strategy::kST, Strategy::kDC,
                                    Strategy::kDE};

/// One explored schedule of the contended mix. Returns the recording so
/// the smoke validation can compare streams across runs.
RecordBundle run_schedule(Strategy strategy, std::uint32_t threads,
                          std::uint64_t seed, int iters) {
  romp::TeamOptions topt;
  topt.num_threads = threads;
  topt.engine.mode = Mode::kExplore;
  topt.engine.strategy = strategy;
  topt.engine.explore_seed = seed;
  topt.engine.explore_preemptions = 2;
  romp::Team team(topt);
  romp::Handle hc = team.register_handle("bench:crit");
  romp::Handle ha = team.register_handle("bench:acc");
  std::atomic<std::int64_t> sum{0};
  team.parallel([&](romp::WorkerCtx& w) {
    for (int i = 0; i < iters; ++i) {
      team.critical(w, hc, [&] { sum.fetch_add(1, std::memory_order_relaxed); });
      team.atomic_fetch_add<std::int64_t>(w, ha, sum, 1);
    }
    team.barrier(w);
    for (int i = 0; i < iters; ++i) {
      team.atomic_fetch_add<std::int64_t>(w, ha, sum, 1);
    }
  });
  team.finalize();
  return team.engine().take_bundle();
}

struct Result {
  Strategy strategy;
  std::uint32_t threads;
  double schedules_per_sec;
  double events_per_sec;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::uint64_t schedules = 64;
  std::uint32_t max_threads = 8;
  int iters = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      schedules = 8;
      max_threads = 4;
      iters = 8;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schedules") == 0 && i + 1 < argc) {
      schedules = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--schedules N] "
                   "[--threads N]\n",
                   argv[0]);
      return 2;
    }
  }
  bool ok = true;

  // ---- validation: the determinism contract, per strategy ----
  for (const Strategy s : kStrategies) {
    const RecordBundle a = run_schedule(s, 2, /*seed=*/42, iters);
    const RecordBundle b = run_schedule(s, 2, /*seed=*/42, iters);
    if (a.shared_stream != b.shared_stream ||
        a.thread_streams != b.thread_streams) {
      std::fprintf(stderr,
                   "FAIL: %s seed 42 streams differ across runs (explore "
                   "determinism broken)\n",
                   to_string(s).data());
      ok = false;
    }
    std::set<std::vector<std::uint8_t>> distinct;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      RecordBundle r = run_schedule(s, 2, seed, iters);
      std::vector<std::uint8_t> key = r.shared_stream;
      for (const auto& t : r.thread_streams) {
        key.insert(key.end(), t.begin(), t.end());
      }
      distinct.insert(std::move(key));
    }
    if (distinct.size() < 2) {
      std::fprintf(stderr,
                   "FAIL: %s seed sweep 1..8 collapsed to one schedule\n",
                   to_string(s).data());
      ok = false;
    }
  }

  // ---- throughput sweep ----
  std::vector<Result> results;
  std::printf("%-4s %8s %15s %14s\n", "strat", "threads", "schedules/sec",
              "events/sec");
  std::vector<std::uint32_t> thread_counts;
  for (std::uint32_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);
  for (const Strategy s : kStrategies) {
    for (const std::uint32_t threads : thread_counts) {
      std::uint64_t events = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t seed = 1; seed <= schedules; ++seed) {
        const RecordBundle b = run_schedule(s, threads, seed, iters);
        std::uint64_t bytes = b.shared_stream.size();
        for (const auto& st : b.thread_streams) bytes += st.size();
        events += bytes > 0 ? 1 : 0;  // schedule produced a trace
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double sps =
          static_cast<double>(schedules) / (secs > 0 ? secs : 1e-9);
      // Events per schedule: iters gated pairs per thread (critical is one
      // event, the atomic another) plus the post-barrier tail.
      const double eps = sps * threads * (3.0 * iters);
      results.push_back({s, threads, sps, eps});
      std::printf("%-4s %8u %15.1f %14.0f\n", to_string(s).data(), threads,
                  sps, eps);
      if (events != schedules) {
        std::fprintf(stderr, "FAIL: %s/%u: %llu of %llu schedules traced\n",
                     to_string(s).data(), threads,
                     static_cast<unsigned long long>(events),
                     static_cast<unsigned long long>(schedules));
        ok = false;
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path, std::ios::trunc);
    f << "{\n  \"benchmark\": \"explore\",\n  \"workload\": "
         "\"contended_mix\",\n  \"schedules\": "
      << schedules << ",\n  \"iters\": " << iters << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      f << "    {\"strategy\": \"" << to_string(r.strategy)
        << "\", \"threads\": " << r.threads << ", \"schedules_per_sec\": "
        << static_cast<std::uint64_t>(r.schedules_per_sec * 10) / 10.0
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(r.events_per_sec)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
