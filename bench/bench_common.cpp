#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdio>

#include "src/common/affinity.hpp"
#include "src/common/timer.hpp"

namespace reomp::benchx {

namespace {

using apps::RunConfig;
using apps::RunResult;
using core::Mode;
using core::Strategy;

Strategy config_strategy(Config c) {
  switch (c) {
    case Config::kStRecord: case Config::kStReplay: return Strategy::kST;
    case Config::kDcRecord: case Config::kDcReplay: return Strategy::kDC;
    default: return Strategy::kDE;
  }
}

bool is_replay(Config c) {
  return c == Config::kStReplay || c == Config::kDcReplay ||
         c == Config::kDeReplay;
}

struct CacheKey {
  std::string app;
  Strategy strategy;
  std::uint32_t threads;
  double scale;

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return std::tie(a.app, a.strategy, a.threads, a.scale) <
           std::tie(b.app, b.strategy, b.threads, b.scale);
  }
};

struct CachedRecord {
  std::string dir;  // tmpfs record directory the replay runs read from
  core::EpochHistogram histogram;
};

std::mutex cache_mu;
std::map<CacheKey, std::unique_ptr<CachedRecord>> record_cache;

// Record files live on tmpfs, matching the paper's evaluation setup ("We
// store record files in a tmpfs file system", §VI). The in-memory bundle
// path exists for tests and the I/O-isolation ablation.
std::string bench_dir_root() { return "/tmp/reomp_bench"; }

std::string sanitized(std::string s) {
  for (char& c : s) {
    if (c == '/' || c == ' ') c = '_';
  }
  return s;
}

std::string record_dir_for(const apps::AppInfo& app, Strategy strategy,
                           std::uint32_t threads, const char* kind) {
  return bench_dir_root() + "/" + sanitized(app.name) + "_" +
         std::string(core::to_string(strategy)) + "_" +
         std::to_string(threads) + "_" + kind;
}

const CachedRecord& cached_record(const apps::AppInfo& app,
                                  Strategy strategy, std::uint32_t threads,
                                  double scale) {
  const CacheKey key{app.name, strategy, threads, scale};
  std::lock_guard<std::mutex> lock(cache_mu);
  auto it = record_cache.find(key);
  if (it != record_cache.end()) return *it->second;

  RunConfig cfg;
  cfg.threads = threads;
  cfg.scale = scale;
  cfg.engine.mode = Mode::kRecord;
  cfg.engine.strategy = strategy;
  cfg.engine.dir = record_dir_for(app, strategy, threads, "cached");
  RunResult r = app.run(cfg);
  auto rec = std::make_unique<CachedRecord>();
  rec->dir = cfg.engine.dir;
  rec->histogram = r.epoch_histogram;
  return *record_cache.emplace(key, std::move(rec)).first->second;
}

}  // namespace

std::vector<std::int64_t> thread_sweep() {
  const std::int64_t cores = static_cast<std::int64_t>(logical_cpus());
  std::vector<std::int64_t> sweep;
  for (std::int64_t t = 1; t <= cores; t *= 2) sweep.push_back(t);
  if (sweep.back() != cores) sweep.push_back(cores);
  return sweep;
}

std::int64_t max_threads() { return thread_sweep().back(); }

const char* config_name(Config c) {
  switch (c) {
    case Config::kWithout: return "wo_reomp";
    case Config::kStRecord: return "st_record";
    case Config::kStReplay: return "st_replay";
    case Config::kDcRecord: return "dc_record";
    case Config::kDcReplay: return "dc_replay";
    case Config::kDeRecord: return "de_record";
    case Config::kDeReplay: return "de_replay";
  }
  return "?";
}

double run_once(const apps::AppInfo& app, Config config,
                std::uint32_t threads, double scale) {
  RunConfig cfg;
  cfg.threads = threads;
  cfg.scale = scale;
  if (config == Config::kWithout) {
    cfg.engine.mode = Mode::kOff;
  } else if (is_replay(config)) {
    const CachedRecord& rec =
        cached_record(app, config_strategy(config), threads, scale);
    cfg.engine.mode = Mode::kReplay;
    cfg.engine.strategy = config_strategy(config);
    cfg.engine.dir = rec.dir;
  } else {
    cfg.engine.mode = Mode::kRecord;
    cfg.engine.strategy = config_strategy(config);
    cfg.engine.dir =
        record_dir_for(app, config_strategy(config), threads, "scratch");
  }

  WallTimer timer;
  RunResult r = app.run(cfg);
  const double secs = timer.seconds();
  benchmark::DoNotOptimize(r.checksum);
  return secs;
}

const core::EpochHistogram& cached_histogram(const apps::AppInfo& app,
                                             std::uint32_t threads,
                                             double scale) {
  return cached_record(app, Strategy::kDE, threads, scale).histogram;
}

double measure(const apps::AppInfo& app, Config config, std::uint32_t threads,
               double scale, int reps) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    times.push_back(run_once(app, config, threads, scale));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void register_figure(const std::string& figure, const apps::AppInfo& app,
                     double scale) {
  static constexpr Config kConfigs[] = {
      Config::kWithout,  Config::kStRecord, Config::kStReplay,
      Config::kDcRecord, Config::kDcReplay, Config::kDeRecord,
      Config::kDeReplay,
  };
  for (Config config : kConfigs) {
    const std::string name = figure + "/" + config_name(config);
    auto* bench = benchmark::RegisterBenchmark(
        name.c_str(),
        [&app, config, scale](benchmark::State& state) {
          const auto threads = static_cast<std::uint32_t>(state.range(0));
          // Prime the record cache outside the timed loop so replay
          // benchmarks time only the replay (record-once, replay-many).
          if (config != Config::kWithout) {
            (void)cached_record(app, config_strategy(config), threads, scale);
          }
          for (auto _ : state) {
            const double secs = run_once(app, config, threads, scale);
            state.SetIterationTime(secs);
          }
        });
    bench->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);
    for (std::int64_t t : thread_sweep()) bench->Arg(t);
  }
}

void print_summary_table(const std::string& title, const apps::AppInfo& app,
                         double scale, int reps) {
  std::printf("\n=== %s (execution time, seconds) ===\n", title.c_str());
  std::printf("%8s", "threads");
  static constexpr Config kConfigs[] = {
      Config::kWithout,  Config::kStRecord, Config::kStReplay,
      Config::kDcRecord, Config::kDcReplay, Config::kDeRecord,
      Config::kDeReplay,
  };
  for (Config c : kConfigs) std::printf(" %10s", config_name(c));
  std::printf("\n");
  for (std::int64_t t : thread_sweep()) {
    std::printf("%8lld", static_cast<long long>(t));
    for (Config c : kConfigs) {
      const double secs =
          measure(app, c, static_cast<std::uint32_t>(t), scale, reps);
      std::printf(" %10.4f", secs);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

int bench_main(int argc, char** argv, const std::function<void()>& summary) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (summary) summary();
  return 0;
}

}  // namespace reomp::benchx
