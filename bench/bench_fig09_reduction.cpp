// Figure 9: execution time of omp_reduction across thread counts, for the
// seven configurations (w/o ReOMP, {ST,DC,DE} x {record,replay}).
//
// Expected shape (paper §VI-A1): all configurations are indistinguishable —
// the reduction gates only one merge per thread, so record-and-replay
// overhead is negligible for every strategy.
#include "bench/bench_common.hpp"
#include "src/apps/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::synthetic_benchmarks()[0];
  constexpr double kScale = 1.0;
  benchx::register_figure("fig09_omp_reduction", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 9: omp_reduction", app, kScale);
  });
}
