// Table X: factors of performance improvement of DC/DE recording over ST
// recording at max threads, for the five applications.
//
// Expected shape (paper): record factors near 1x (0.9-1.3); replay factors
// well above 1x for both DC and DE, with DE > DC everywhere and the DE
// advantage largest for HACC and smallest for QuickSilver.
#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  benchmark::Initialize(&argc, argv);

  const auto threads = static_cast<std::uint32_t>(benchx::max_threads());
  constexpr double kScale = 1.0;
  constexpr int kReps = 3;

  std::printf("=== Table X: DC/DE improvement over ST at %u threads ===\n",
              threads);
  std::printf("%-12s %10s %10s %10s %10s\n", "app", "DC.record", "DE.record",
              "DC.replay", "DE.replay");

  for (const auto& app : apps::all_apps()) {
    const double st_rec = benchx::measure(app, benchx::Config::kStRecord,
                                          threads, kScale, kReps);
    const double st_rep = benchx::measure(app, benchx::Config::kStReplay,
                                          threads, kScale, kReps);
    auto factor = [&](benchx::Config c, double st) {
      return st / benchx::measure(app, c, threads, kScale, kReps);
    };
    std::printf("%-12s %10.2f %10.2f %10.2f %10.2f\n", app.name.c_str(),
                factor(benchx::Config::kDcRecord, st_rec),
                factor(benchx::Config::kDeRecord, st_rec),
                factor(benchx::Config::kDcReplay, st_rep),
                factor(benchx::Config::kDeReplay, st_rep));
    std::fflush(stdout);
  }
  benchmark::Shutdown();
  return 0;
}
