// Ablation: I/O overlap in DC/DE record runs (paper §IV-C3). The paper's
// design writes the clock value *after* releasing the gate lock, so the
// append overlaps other threads' SMA regions; the write_inside_lock switch
// forfeits that. Uses real files (tmpfs) since the effect is an I/O one.
#include <cstdio>

#include "src/apps/synthetic.hpp"
#include "src/common/timer.hpp"

int main() {
  using namespace reomp;
  const std::uint32_t threads = 8;
  constexpr double kScale = 1.0;
  constexpr int kReps = 3;

  std::printf("=== Ablation: record-side I/O overlap (data_race, %u threads, "
              "tmpfs files) ===\n", threads);
  std::printf("%10s %22s %22s\n", "strategy", "write_outside_lock_s",
              "write_inside_lock_s");

  for (core::Strategy strategy : {core::Strategy::kDC, core::Strategy::kDE}) {
    double secs[2] = {0, 0};
    for (int inside = 0; inside < 2; ++inside) {
      double best = 1e9;
      for (int rep = 0; rep < kReps; ++rep) {
        apps::RunConfig cfg;
        cfg.threads = threads;
        cfg.scale = kScale;
        cfg.engine.mode = core::Mode::kRecord;
        cfg.engine.strategy = strategy;
        cfg.engine.write_inside_lock = inside == 1;
        cfg.engine.dir = "/tmp/reomp_ablation_io";
        WallTimer t;
        (void)apps::run_synthetic_datarace(cfg);
        best = std::min(best, t.seconds());
      }
      secs[inside] = best;
    }
    std::printf("%10s %22.4f %22.4f\n",
                std::string(core::to_string(strategy)).c_str(), secs[0],
                secs[1]);
    std::fflush(stdout);
  }
  return 0;
}
