// Figure 12: execution time of data_race across thread counts.
//
// Expected shape (paper §VI-A3): the most expensive pattern for every
// strategy (an uninstrumented racy `sum += 1` is nearly free, a gated one
// is not), and the one where DE separates from DC: interleaved racy loads
// and stores form same-kind runs that DE replays concurrently, so DE
// replay beats DC replay (paper Table IX: 73.05x vs 98.31x relative).
#include "bench/bench_common.hpp"
#include "src/apps/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::synthetic_benchmarks()[3];
  constexpr double kScale = 1.0;
  benchx::register_figure("fig12_data_race", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 12: data_race", app, kScale);
  });
}
