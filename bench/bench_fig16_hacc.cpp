// Figure 16: execution time of the HACC proxy across thread counts.
// Expected shape: the widest DE-over-DC replay gap of the five apps —
// HACC's progress-board spin pattern yields the highest parallel-epoch
// fraction (paper: 85%, 5.61x vs 4.01x replay speedup at 112 threads).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace reomp;
  const apps::AppInfo& app = apps::app_by_name("HACC");
  constexpr double kScale = 1.0;
  benchx::register_figure("fig16_hacc", app, kScale);
  return benchx::bench_main(argc, argv, [&] {
    benchx::print_summary_table("Figure 16: OpenMP HACC", app, kScale);
  });
}
