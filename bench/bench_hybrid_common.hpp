// Shared sweep for the hybrid (ReMPI+ReOMP) benches, Figs. 18 & 19.
//
// The paper sweeps total thread count (ranks x threads) from 24 to 4800
// across nodes with three curves: w/o instrumentation, DE record, DE
// replay. This host sweeps rank/thread combinations up to the core count;
// the claim being reproduced is that record and replay stay within a
// small, scale-independent margin of the uninstrumented run.
#pragma once

#include <cstdio>
#include <utility>
#include <vector>

#include "src/apps/hybrid.hpp"
#include "src/common/affinity.hpp"
#include "src/common/timer.hpp"

namespace reomp::benchx {

inline std::vector<std::pair<int, std::uint32_t>> hybrid_sweep() {
  const auto cores = static_cast<int>(logical_cpus());
  std::vector<std::pair<int, std::uint32_t>> sweep = {
      {1, 2}, {2, 2}, {2, 4}, {4, 4}, {4, 6}, {6, 8},
  };
  std::vector<std::pair<int, std::uint32_t>> fit;
  for (auto [r, t] : sweep) {
    if (r * static_cast<int>(t) <= 2 * cores) fit.emplace_back(r, t);
  }
  return fit;
}

inline void run_hybrid_figure(
    const char* title,
    apps::HybridResult (*fn)(const apps::HybridConfig&), double scale) {
  std::printf("=== %s (execution time, seconds) ===\n", title);
  std::printf("%6s %8s %7s %12s %12s %12s\n", "ranks", "threads", "total",
              "wo", "de_record", "de_replay");
  for (auto [ranks, threads] : hybrid_sweep()) {
    apps::HybridConfig cfg;
    cfg.ranks = ranks;
    cfg.threads_per_rank = threads;
    cfg.scale = scale;
    cfg.strategy = core::Strategy::kDE;

    cfg.mode = core::Mode::kOff;
    WallTimer t0;
    (void)fn(cfg);
    const double wo = t0.seconds();

    cfg.mode = core::Mode::kRecord;
    WallTimer t1;
    apps::HybridResult rec = fn(cfg);
    const double record = t1.seconds();

    cfg.mode = core::Mode::kReplay;
    cfg.bundle = &rec.bundle;
    WallTimer t2;
    (void)fn(cfg);
    const double replay = t2.seconds();

    std::printf("%6d %8u %7d %12.4f %12.4f %12.4f\n", ranks, threads,
                ranks * static_cast<int>(threads), wo, record, replay);
    std::fflush(stdout);
  }
}

}  // namespace reomp::benchx
